//! The sharded metrics registry.
//!
//! The same idiom as `PipelineStats`: every recording thread owns a *shard*
//! of plain atomic slots, and nothing is merged until somebody asks for a
//! [`MetricsSnapshot`]. Registration (naming a counter/gauge/histogram) is
//! the only locked operation and happens at setup time; the record path is
//! an index into a preallocated atomic array — lock-free, allocation-free,
//! and private to the owning worker except for the cache line the snapshot
//! reader eventually loads.
//!
//! Slot capacity per kind is fixed ([`MAX_METRICS`]) so shards can
//! preallocate their arrays once and ids stay valid for every shard created
//! before *or after* registration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{AtomicHistogram, HistogramSnapshot};

/// Fixed number of metric slots per kind. Registration past this panics —
/// metrics are a curated taxonomy, not a dynamic namespace, and a fixed
/// capacity is what lets every shard preallocate and record lock-free.
pub const MAX_METRICS: usize = 64;

/// Identifies a registered counter. Cheap to copy, valid for the lifetime
/// of the registry that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(pub(crate) u16);

/// Identifies a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u16);

/// Identifies a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(pub(crate) u16);

/// Name + help text of one registered metric.
#[derive(Clone, Debug)]
pub struct MetricDesc {
    /// Prometheus-style metric name, e.g. `gx_queue_wait_ns`.
    pub name: String,
    /// One-line human description (the `# HELP` text).
    pub help: String,
}

/// One recording thread's slots: preallocated atomic arrays indexed by
/// metric id. All loads/stores are relaxed — slots are independent
/// monotone counters, and exactness is only claimed after the recording
/// side has quiesced (workers joined), which is when reports snapshot.
#[derive(Debug)]
pub(crate) struct Shard {
    counters: Vec<AtomicU64>,
    gauge_last: Vec<AtomicU64>,
    gauge_max: Vec<AtomicU64>,
    histograms: Vec<AtomicHistogram>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: (0..MAX_METRICS).map(|_| AtomicU64::new(0)).collect(),
            gauge_last: (0..MAX_METRICS).map(|_| AtomicU64::new(0)).collect(),
            gauge_max: (0..MAX_METRICS).map(|_| AtomicU64::new(0)).collect(),
            histograms: (0..MAX_METRICS).map(|_| AtomicHistogram::new()).collect(),
        }
    }

    #[inline]
    pub(crate) fn counter_add(&self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn gauge_set(&self, id: GaugeId, v: u64) {
        self.gauge_last[id.0 as usize].store(v, Ordering::Relaxed);
        self.gauge_max[id.0 as usize].fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn histogram_record(&self, id: HistogramId, v: u64) {
        self.histograms[id.0 as usize].record(v);
    }
}

/// The registry: metric descriptors (locked, setup-time only) plus the list
/// of live shards (one per recorder).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<Vec<MetricDesc>>,
    gauges: RwLock<Vec<MetricDesc>>,
    histograms: RwLock<Vec<MetricDesc>>,
    shards: RwLock<Vec<Arc<Shard>>>,
}

/// Get-or-register `name` in `descs`; `None` once [`MAX_METRICS`] distinct
/// names exist (the caller decides whether that is a panic or a graceful
/// degrade).
fn register_opt(descs: &RwLock<Vec<MetricDesc>>, name: &str, help: &str) -> Option<u16> {
    let mut descs = descs.write().unwrap();
    if let Some(i) = descs.iter().position(|d| d.name == name) {
        return Some(i as u16);
    }
    if descs.len() >= MAX_METRICS {
        return None;
    }
    descs.push(MetricDesc {
        name: name.to_string(),
        help: help.to_string(),
    });
    Some((descs.len() - 1) as u16)
}

/// Get-or-register `name` in `descs`, enforcing [`MAX_METRICS`].
fn register(descs: &RwLock<Vec<MetricDesc>>, name: &str, help: &str, kind: &str) -> u16 {
    register_opt(descs, name, help).unwrap_or_else(|| {
        panic!("too many {kind} metrics (max {MAX_METRICS}); registering {name:?}")
    })
}

/// Renders a labeled metric name, `labeled("gx_job_pairs_total", "job", 3)`
/// → `gx_job_pairs_total{job="3"}`. The Prometheus exposition understands
/// the brace syntax: `# HELP`/`# TYPE` lines use the base name (emitted
/// once per base), sample suffixes (`_max`, `_bucket`, ...) are inserted
/// *before* the label set, and a histogram's `le` label merges into it.
pub fn labeled(name: &str, key: &str, value: impl std::fmt::Display) -> String {
    format!("{name}{{{key}=\"{value}\"}}")
}

/// Splits a possibly labeled metric name into `(base, labels)` where
/// `labels` excludes the braces (`""` when unlabeled).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

/// One sample line's series name: `base` + `suffix`, with `labels` (and an
/// optional extra `le` pair) re-attached after the suffix.
fn series(base: &str, suffix: &str, labels: &str, le: Option<&str>) -> String {
    let mut all = String::new();
    if !labels.is_empty() {
        all.push_str(labels);
    }
    if let Some(le) = le {
        if !all.is_empty() {
            all.push(',');
        }
        all.push_str("le=\"");
        all.push_str(le);
        all.push('"');
    }
    if all.is_empty() {
        format!("{base}{suffix}")
    } else {
        format!("{base}{suffix}{{{all}}}")
    }
}

impl MetricsRegistry {
    /// An empty registry with no shards.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or looks up) a monotone counter. Idempotent by name.
    pub fn counter(&self, name: &str, help: &str) -> CounterId {
        CounterId(register(&self.counters, name, help, "counter"))
    }

    /// Registers (or looks up) a gauge. Idempotent by name.
    pub fn gauge(&self, name: &str, help: &str) -> GaugeId {
        GaugeId(register(&self.gauges, name, help, "gauge"))
    }

    /// Registers (or looks up) a log2 latency histogram. Idempotent by name.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramId {
        HistogramId(register(&self.histograms, name, help, "histogram"))
    }

    /// Like [`counter`](MetricsRegistry::counter) but returns `None` instead
    /// of panicking once [`MAX_METRICS`] names exist — for dynamically
    /// labeled series (per-job metrics) that should degrade to an aggregate
    /// rather than crash a long-running service.
    pub fn try_counter(&self, name: &str, help: &str) -> Option<CounterId> {
        register_opt(&self.counters, name, help).map(CounterId)
    }

    /// Like [`gauge`](MetricsRegistry::gauge) but `None` when full.
    pub fn try_gauge(&self, name: &str, help: &str) -> Option<GaugeId> {
        register_opt(&self.gauges, name, help).map(GaugeId)
    }

    /// Like [`histogram`](MetricsRegistry::histogram) but `None` when full.
    pub fn try_histogram(&self, name: &str, help: &str) -> Option<HistogramId> {
        register_opt(&self.histograms, name, help).map(HistogramId)
    }

    /// Creates a fresh shard for one recording thread and enrolls it for
    /// snapshot merging.
    pub(crate) fn new_shard(&self) -> Arc<Shard> {
        let shard = Arc::new(Shard::new());
        self.shards.write().unwrap().push(Arc::clone(&shard));
        shard
    }

    /// Merges every shard into an immutable snapshot. Reads are relaxed
    /// atomics — exact once recorders have quiesced, a consistent
    /// approximation mid-run.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards = self.shards.read().unwrap();
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, d)| CounterValue {
                desc: d.clone(),
                value: shards
                    .iter()
                    .map(|s| s.counters[i].load(Ordering::Relaxed))
                    .sum(),
            })
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, d)| GaugeValue {
                desc: d.clone(),
                // Gauges are owned by a single shard in practice (one
                // emitter, one frontier); summing the per-shard "last"
                // values generalises to per-component depth gauges.
                last: shards
                    .iter()
                    .map(|s| s.gauge_last[i].load(Ordering::Relaxed))
                    .sum(),
                max: shards
                    .iter()
                    .map(|s| s.gauge_max[i].load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let mut merged = HistogramSnapshot::new();
                for s in shards.iter() {
                    merged.merge(&s.histograms[i].snapshot());
                }
                HistogramValue {
                    desc: d.clone(),
                    hist: merged,
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A merged counter: descriptor plus the sum over all shards.
#[derive(Clone, Debug)]
pub struct CounterValue {
    /// Name and help text.
    pub desc: MetricDesc,
    /// Sum of all shards.
    pub value: u64,
}

/// A merged gauge: the summed last-set value plus the high-water mark.
#[derive(Clone, Debug)]
pub struct GaugeValue {
    /// Name and help text.
    pub desc: MetricDesc,
    /// Sum of each shard's last-set value (single-writer gauges: the value).
    pub last: u64,
    /// Largest value any shard ever set.
    pub max: u64,
}

/// A merged histogram.
#[derive(Clone, Debug)]
pub struct HistogramValue {
    /// Name and help text.
    pub desc: MetricDesc,
    /// Element-wise merge of every shard's histogram.
    pub hist: HistogramSnapshot,
}

/// An immutable point-in-time merge of every shard, with lookup-by-name
/// accessors and a Prometheus text exposition.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All registered counters, in registration order.
    pub counters: Vec<CounterValue>,
    /// All registered gauges, in registration order.
    pub gauges: Vec<GaugeValue>,
    /// All registered histograms, in registration order.
    pub histograms: Vec<HistogramValue>,
}

impl MetricsSnapshot {
    /// The merged value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.desc.name == name)
            .map(|c| c.value)
    }

    /// The merged gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<&GaugeValue> {
        self.gauges.iter().find(|g| g.desc.name == name)
    }

    /// The merged histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.desc.name == name)
            .map(|h| &h.hist)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` preambles; histograms as cumulative `le` buckets
    /// plus `_sum`/`_count`). Empty histogram buckets are elided to keep
    /// the page readable; the `+Inf` bucket is always present. Metrics
    /// registered with a [`labeled`] name render as one series per label
    /// set under a shared base name — the `# HELP`/`# TYPE` preamble is
    /// emitted once per base.
    pub fn to_prometheus(&self) -> String {
        use std::collections::HashSet;
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut preamble = |out: &mut String, base: &str, help: &str, kind: &str| {
            if seen.insert(format!("{kind}/{base}")) {
                let _ = writeln!(out, "# HELP {base} {help}");
                let _ = writeln!(out, "# TYPE {base} {kind}");
            }
        };
        for c in &self.counters {
            let (base, labels) = split_labels(&c.desc.name);
            preamble(&mut out, base, &c.desc.help, "counter");
            let _ = writeln!(out, "{} {}", series(base, "", labels, None), c.value);
        }
        for g in &self.gauges {
            let (base, labels) = split_labels(&g.desc.name);
            preamble(&mut out, base, &g.desc.help, "gauge");
            let _ = writeln!(out, "{} {}", series(base, "", labels, None), g.last);
            let _ = writeln!(out, "{} {}", series(base, "_max", labels, None), g.max);
        }
        for h in &self.histograms {
            let (base, labels) = split_labels(&h.desc.name);
            preamble(&mut out, base, &h.desc.help, "histogram");
            let mut cumulative = 0u64;
            for (i, &count) in h.hist.counts.iter().enumerate() {
                cumulative += count;
                if count > 0 && i < crate::histogram::HISTOGRAM_BUCKETS - 1 {
                    let le = crate::histogram::bucket_upper_bound(i).to_string();
                    let _ = writeln!(
                        out,
                        "{} {}",
                        series(base, "_bucket", labels, Some(&le)),
                        cumulative
                    );
                }
            }
            let _ = writeln!(
                out,
                "{} {}",
                series(base, "_bucket", labels, Some("+Inf")),
                h.hist.count
            );
            let _ = writeln!(out, "{} {}", series(base, "_sum", labels, None), h.hist.sum);
            let _ = writeln!(
                out,
                "{} {}",
                series(base, "_count", labels, None),
                h.hist.count
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_snapshot_merges_shards() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("gx_test_total", "test counter");
        assert_eq!(c, reg.counter("gx_test_total", "test counter"));
        let g = reg.gauge("gx_depth", "test gauge");
        let h = reg.histogram("gx_lat_ns", "test histogram");

        let s1 = reg.new_shard();
        let s2 = reg.new_shard();
        s1.counter_add(c, 3);
        s2.counter_add(c, 4);
        s1.gauge_set(g, 10);
        s1.gauge_set(g, 2);
        s1.histogram_record(h, 100);
        s2.histogram_record(h, 200);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("gx_test_total"), Some(7));
        let gauge = snap.gauge("gx_depth").unwrap();
        assert_eq!(gauge.last, 2);
        assert_eq!(gauge.max, 10);
        let hist = snap.histogram("gx_lat_ns").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 300);
        assert!(snap.counter("missing").is_none());
    }

    #[test]
    fn try_register_degrades_instead_of_panicking() {
        let reg = MetricsRegistry::new();
        for i in 0..MAX_METRICS {
            assert!(reg.try_counter(&format!("gx_c{i}_total"), "c").is_some());
        }
        // The table is full: a fresh name degrades to None...
        assert!(reg.try_counter("gx_overflow_total", "c").is_none());
        // ...but an existing name still resolves (idempotent lookup).
        assert_eq!(
            reg.try_counter("gx_c0_total", "c"),
            Some(reg.counter("gx_c0_total", "c"))
        );
        // Kinds have independent tables.
        assert!(reg.try_gauge("gx_depth", "g").is_some());
        assert!(reg.try_histogram("gx_lat_ns", "h").is_some());
    }

    #[test]
    fn labeled_series_share_one_preamble() {
        let reg = MetricsRegistry::new();
        let a = reg.counter(&labeled("gx_job_pairs_total", "job", 0), "pairs per job");
        let b = reg.counter(&labeled("gx_job_pairs_total", "job", 1), "pairs per job");
        assert_ne!(a, b, "distinct label sets are distinct series");
        let g = reg.gauge(&labeled("gx_job_depth", "job", 7), "reorder depth");
        let h = reg.histogram(&labeled("gx_job_wait_ns", "job", 7), "wait");
        let shard = reg.new_shard();
        shard.counter_add(a, 2);
        shard.counter_add(b, 5);
        shard.gauge_set(g, 3);
        shard.histogram_record(h, 100);

        let text = reg.snapshot().to_prometheus();
        // One HELP/TYPE preamble for the shared base name...
        assert_eq!(text.matches("# TYPE gx_job_pairs_total counter").count(), 1);
        assert_eq!(text.matches("# HELP gx_job_pairs_total ").count(), 1);
        // ...one sample line per label set...
        assert!(text.contains("gx_job_pairs_total{job=\"0\"} 2"));
        assert!(text.contains("gx_job_pairs_total{job=\"1\"} 5"));
        // ...and suffixes are inserted before the labels, not after.
        assert!(text.contains("gx_job_depth{job=\"7\"} 3"));
        assert!(text.contains("gx_job_depth_max{job=\"7\"} 3"));
        assert!(text.contains("gx_job_wait_ns_count{job=\"7\"} 1"));
        assert!(text.contains("gx_job_wait_ns_sum{job=\"7\"} 100"));
        // Histogram buckets merge `le` into the label set.
        assert!(text.contains("gx_job_wait_ns_bucket{job=\"7\",le=\"+Inf\"} 1"));
        assert!(!text.contains("}{"), "malformed series name:\n{text}");
    }

    #[test]
    fn prometheus_text_has_help_type_and_inf_bucket() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("gx_ticks_total", "ticks");
        let h = reg.histogram("gx_wait_ns", "wait");
        let shard = reg.new_shard();
        shard.counter_add(c, 5);
        shard.histogram_record(h, 9);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# HELP gx_ticks_total ticks"));
        assert!(text.contains("# TYPE gx_ticks_total counter"));
        assert!(text.contains("gx_ticks_total 5"));
        assert!(text.contains("gx_wait_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("gx_wait_ns_sum 9"));
        assert!(text.contains("gx_wait_ns_count 1"));
    }
}
