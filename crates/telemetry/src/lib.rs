//! gx-telemetry — the observability layer for the GenPairX workspace.
//!
//! Production mapping-as-a-service (ROADMAP item 1) needs a live window
//! into the engine: which stage a batch is waiting in, how deep the
//! emitter's reorder buffer runs, what the NMSL lanes are doing while a
//! worker blocks. This crate provides that window under two hard rules:
//!
//! 1. **Zero-cost when disabled.** [`Telemetry::disabled`] is a `None`
//!    handle; every recorder method is a branch on that `Option` and
//!    returns without reading the clock, touching an atomic, or
//!    allocating. `crates/telemetry/tests/no_alloc.rs` pins the
//!    no-allocation half; the bench README documents the A/B throughput
//!    budget for the enabled path.
//! 2. **Accounting-inert.** Telemetry observes wall-clock time; modeled
//!    statistics (`BackendStats`, `PipelineStats`) are *simulated* time.
//!    Wall-clock reads flow only into telemetry buffers, never into
//!    modeled totals — `tests/e2e_warm_invariance.rs` asserts warm
//!    accounting stays bit-identical with tracing fully enabled.
//!
//! The moving parts:
//!
//! * [`MetricsRegistry`] — named counters, gauges and log2 latency
//!   histograms, sharded one shard per [`Recorder`] (the `PipelineStats`
//!   idiom) and merged lock-free at [`Telemetry::snapshot`] time.
//! * [`Recorder`] — a per-thread handle owning one metrics shard and one
//!   fixed-capacity [`SpanRing`]; recording is lock-free and
//!   allocation-free.
//! * [`chrome_trace_json`] — exports collected spans as Chrome
//!   trace-event JSON, viewable in Perfetto or `chrome://tracing`.
//! * [`MetricsSnapshot::to_prometheus`] — text exposition for the future
//!   service front-end's stats endpoint.
//!
//! # Example
//!
//! ```
//! use gx_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled();
//! let wait = telemetry.histogram("gx_wait_ns", "time spent waiting");
//! let mut rec = telemetry.recorder(0);
//! telemetry.label_track(0, "worker 0");
//!
//! let t0 = rec.start();
//! // ... the timed region ...
//! let dur_ns = rec.span("queue_wait", t0);
//! rec.record(wait, dur_ns);
//! drop(rec); // flushes the span ring
//!
//! let snap = telemetry.snapshot().unwrap();
//! assert_eq!(snap.histogram("gx_wait_ns").unwrap().count, 1);
//! let json = telemetry.chrome_trace().unwrap();
//! assert!(json.contains("queue_wait"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod histogram;
mod registry;
mod spans;
mod trace;

pub use histogram::{
    bucket_index, bucket_upper_bound, AtomicHistogram, HistogramSnapshot, HISTOGRAM_BUCKETS,
};
pub use registry::{
    labeled, CounterId, CounterValue, GaugeId, GaugeValue, HistogramId, HistogramValue, MetricDesc,
    MetricsRegistry, MetricsSnapshot, MAX_METRICS,
};
pub use spans::{SpanEvent, SpanKind, SpanRing};
pub use trace::chrome_trace_json;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning for an enabled [`Telemetry`] handle.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Span-ring capacity per recorder (events). When a ring fills, the
    /// oldest events are overwritten — the trace becomes a tail window —
    /// and the overwrites are counted in [`Telemetry::dropped_events`].
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            // 16Ki events ≈ 640 KiB per recorder: enough for every batch of
            // the bench workloads, small enough to never matter.
            ring_capacity: 16_384,
        }
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    config: TelemetryConfig,
    registry: MetricsRegistry,
    /// Flushed span events from retired recorders, in flush order.
    events: Mutex<Vec<SpanEvent>>,
    /// Human names for span tracks (Chrome-trace thread names).
    labels: Mutex<Vec<(u32, String)>>,
    /// Total ring overwrites across all recorders.
    dropped: AtomicU64,
}

/// The telemetry handle: either a live collector or an inert no-op.
///
/// Cloning is cheap (an `Arc` bump or a `None` copy); every component of a
/// run shares clones of one handle. A disabled handle makes every recorder
/// it issues a no-op — no clock reads, no atomics, no allocation — so the
/// instrumented hot paths cost a predicted branch when telemetry is off.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The inert handle: every operation is a no-op, every query `None`.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A live handle with default [`TelemetryConfig`].
    pub fn enabled() -> Telemetry {
        Telemetry::with_config(TelemetryConfig::default())
    }

    /// A live handle with explicit tuning.
    pub fn with_config(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                config,
                registry: MetricsRegistry::new(),
                events: Mutex::new(Vec::new()),
                labels: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// True when this handle collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or looks up) a counter. Returns a dummy id on a disabled
    /// handle — recording through it is a no-op anyway.
    pub fn counter(&self, name: &str, help: &str) -> CounterId {
        match &self.inner {
            Some(inner) => inner.registry.counter(name, help),
            None => CounterId(0),
        }
    }

    /// Registers (or looks up) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> GaugeId {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name, help),
            None => GaugeId(0),
        }
    }

    /// Registers (or looks up) a log2 latency histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramId {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, help),
            None => HistogramId(0),
        }
    }

    /// Registers a counter without panicking at the [`MAX_METRICS`] cap:
    /// `None` means the table is full and the caller should fall back to an
    /// aggregate series. For dynamically [`labeled`] per-job metrics, where
    /// a long-running service cannot bound the label cardinality up front.
    /// A disabled handle returns a dummy id (recording is a no-op anyway),
    /// so degrade behaviour is exercised only when telemetry is live.
    pub fn try_counter(&self, name: &str, help: &str) -> Option<CounterId> {
        match &self.inner {
            Some(inner) => inner.registry.try_counter(name, help),
            None => Some(CounterId(0)),
        }
    }

    /// Like [`try_counter`](Telemetry::try_counter), for gauges.
    pub fn try_gauge(&self, name: &str, help: &str) -> Option<GaugeId> {
        match &self.inner {
            Some(inner) => inner.registry.try_gauge(name, help),
            None => Some(GaugeId(0)),
        }
    }

    /// Like [`try_counter`](Telemetry::try_counter), for histograms.
    pub fn try_histogram(&self, name: &str, help: &str) -> Option<HistogramId> {
        match &self.inner {
            Some(inner) => inner.registry.try_histogram(name, help),
            None => Some(HistogramId(0)),
        }
    }

    /// Creates a recorder for one thread of execution, on span track
    /// `track`. Each call allocates a fresh metrics shard and span ring;
    /// dropping the recorder (or calling [`Recorder::flush`]) publishes
    /// its ring into the central event log.
    pub fn recorder(&self, track: u32) -> Recorder {
        Recorder {
            inner: self.inner.as_ref().map(|inner| RecorderInner {
                shard: inner.registry.new_shard(),
                ring: SpanRing::with_capacity(inner.config.ring_capacity),
                telemetry: Arc::clone(inner),
                track,
            }),
        }
    }

    /// Names a span track for trace rendering (Chrome-trace thread name).
    pub fn label_track(&self, track: u32, name: &str) {
        if let Some(inner) = &self.inner {
            let mut labels = inner.labels.lock().unwrap();
            if let Some(slot) = labels.iter_mut().find(|(t, _)| *t == track) {
                slot.1 = name.to_string();
            } else {
                labels.push((track, name.to_string()));
            }
        }
    }

    /// Nanoseconds since this handle was created (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Merges every shard into a [`MetricsSnapshot`]; `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|inner| inner.registry.snapshot())
    }

    /// Takes (and clears) all span events flushed so far, oldest flush
    /// first. Live recorders hold their rings until flushed or dropped.
    pub fn take_events(&self) -> Vec<SpanEvent> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.events.lock().unwrap()),
            None => Vec::new(),
        }
    }

    /// Total span events lost to ring overwrites so far.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Renders all flushed span events (plus track labels) as a Chrome
    /// trace-event JSON document, *consuming* the flushed events; `None`
    /// when disabled. Flush or drop recorders first.
    pub fn chrome_trace(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let events = self.take_events();
        let labels = inner.labels.lock().unwrap().clone();
        Some(chrome_trace_json(&events, &labels))
    }
}

#[derive(Debug)]
struct RecorderInner {
    telemetry: Arc<Inner>,
    shard: Arc<registry::Shard>,
    ring: SpanRing,
    track: u32,
}

/// An opaque span start token from [`Recorder::start`]. On a disabled
/// recorder it is empty and cost no clock read to produce.
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(Option<Instant>);

/// A per-thread recording handle: one metrics shard plus one span ring,
/// both private to the owner. All methods are no-ops (a predicted branch)
/// when the parent [`Telemetry`] is disabled.
///
/// Dropping the recorder flushes its span ring into the parent's central
/// event log; call [`flush`](Recorder::flush) to publish earlier.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<RecorderInner>,
}

impl Recorder {
    /// A standalone no-op recorder, equivalent to
    /// `Telemetry::disabled().recorder(0)`. Useful as a field default.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// True when this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Begins a span: reads the clock when enabled, does nothing when not.
    #[inline]
    pub fn start(&self) -> SpanStart {
        SpanStart(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Ends a span begun with [`start`](Recorder::start): records it into
    /// the ring under `name` and returns its duration in nanoseconds (so
    /// the caller can feed a histogram without a second clock read).
    /// Returns 0 when disabled.
    #[inline]
    pub fn span(&mut self, name: &'static str, start: SpanStart) -> u64 {
        self.span_arg(name, start, 0)
    }

    /// Like [`span`](Recorder::span), attaching one integer argument
    /// (exported as `args.v` in the Chrome trace).
    #[inline]
    pub fn span_arg(&mut self, name: &'static str, start: SpanStart, arg: u64) -> u64 {
        let (Some(inner), Some(t0)) = (self.inner.as_mut(), start.0) else {
            return 0;
        };
        let dur_ns = t0.elapsed().as_nanos() as u64;
        let start_ns = t0
            .saturating_duration_since(inner.telemetry.epoch)
            .as_nanos() as u64;
        inner.ring.push(SpanEvent {
            name,
            kind: SpanKind::Duration,
            track: inner.track,
            start_ns,
            dur_ns,
            arg,
        });
        dur_ns
    }

    /// Records a point-in-time counter sample (`value` of series `name`,
    /// timestamped now) into the ring. Exported as a Chrome-trace counter
    /// event (`"ph":"C"`), so Perfetto draws the series as a value-over-time
    /// track on this recorder's track. Allocation-free, like
    /// [`span_arg`](Recorder::span_arg).
    #[inline]
    pub fn counter_sample(&mut self, name: &'static str, value: u64) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let start_ns = inner.telemetry.epoch.elapsed().as_nanos() as u64;
        inner.ring.push(SpanEvent {
            name,
            kind: SpanKind::Counter,
            track: inner.track,
            start_ns,
            dur_ns: 0,
            arg: value,
        });
    }

    /// Adds `n` to counter `id` in this recorder's shard.
    #[inline]
    pub fn counter_add(&self, id: CounterId, n: u64) {
        if let Some(inner) = &self.inner {
            inner.shard.counter_add(id, n);
        }
    }

    /// Sets gauge `id` in this recorder's shard (tracking the high-water
    /// mark as a side effect).
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, v: u64) {
        if let Some(inner) = &self.inner {
            inner.shard.gauge_set(id, v);
        }
    }

    /// Records `v` into histogram `id` in this recorder's shard.
    #[inline]
    pub fn record(&self, id: HistogramId, v: u64) {
        if let Some(inner) = &self.inner {
            inner.shard.histogram_record(id, v);
        }
    }

    /// Publishes the span ring into the parent's central event log and
    /// adds its overwrite count to [`Telemetry::dropped_events`]. The
    /// recorder stays usable; `Drop` flushes whatever accumulates after.
    pub fn flush(&mut self) {
        if let Some(inner) = self.inner.as_mut() {
            let dropped = inner.ring.dropped();
            if dropped > 0 {
                inner
                    .telemetry
                    .dropped
                    .fetch_add(dropped, Ordering::Relaxed);
            }
            let events = inner.ring.drain_ordered();
            if !events.is_empty() {
                inner.telemetry.events.lock().unwrap().extend(events);
            }
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let h = t.histogram("gx_x_ns", "x");
        let mut rec = t.recorder(0);
        assert!(!rec.is_enabled());
        let t0 = rec.start();
        assert_eq!(rec.span("noop", t0), 0);
        rec.record(h, 42);
        assert!(t.snapshot().is_none());
        assert!(t.chrome_trace().is_none());
        assert!(t.take_events().is_empty());
        assert_eq!(t.now_ns(), 0);
    }

    #[test]
    fn spans_flow_from_ring_to_trace() {
        let t = Telemetry::enabled();
        t.label_track(7, "worker 7");
        let mut rec = t.recorder(7);
        let t0 = rec.start();
        let dur = rec.span_arg("map_batch", t0, 5);
        rec.flush();
        let events = t.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "map_batch");
        assert_eq!(events[0].track, 7);
        assert_eq!(events[0].arg, 5);
        assert_eq!(events[0].dur_ns, dur);
        // After take_events, the trace is empty but still valid JSON.
        let json = t.chrome_trace().unwrap();
        assert!(json.contains("worker 7"));
        assert!(!json.contains("map_batch"));
    }

    #[test]
    fn drop_flushes_and_metrics_merge_across_recorders() {
        let t = Telemetry::enabled();
        let c = t.counter("gx_batches_total", "batches");
        {
            let mut a = t.recorder(0);
            let b = t.recorder(1);
            let t0 = a.start();
            a.span("queue_wait", t0);
            a.counter_add(c, 2);
            b.counter_add(c, 3);
        }
        assert_eq!(t.snapshot().unwrap().counter("gx_batches_total"), Some(5));
        let json = t.chrome_trace().unwrap();
        assert!(json.contains("queue_wait"));
    }

    #[test]
    fn counter_samples_flow_to_trace() {
        let t = Telemetry::enabled();
        t.label_track(2001, "lane 1");
        let mut rec = t.recorder(2001);
        rec.counter_sample("occupancy", 17);
        rec.counter_sample("occupancy", 9);
        drop(rec);
        let json = t.chrome_trace().unwrap();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"lane 1 occupancy\""));
        assert!(json.contains("\"args\":{\"occupancy\":17}"));
        assert!(json.contains("\"args\":{\"occupancy\":9}"));
    }

    #[test]
    fn ring_overflow_is_counted() {
        let t = Telemetry::with_config(TelemetryConfig { ring_capacity: 2 });
        let mut rec = t.recorder(0);
        for _ in 0..5 {
            let t0 = rec.start();
            rec.span("tick", t0);
        }
        drop(rec);
        assert_eq!(t.dropped_events(), 3);
        assert_eq!(t.take_events().len(), 2);
    }
}
