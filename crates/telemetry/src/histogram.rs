//! Log2-bucketed latency histograms.
//!
//! Latency distributions span orders of magnitude (a queue-wait is tens of
//! nanoseconds uncontended, milliseconds under backpressure), so linear
//! buckets waste either resolution or memory. The classic answer — used by
//! HdrHistogram-style recorders and the kernel's BPF tooling alike — is
//! power-of-two buckets: value `v` lands in the bucket of its bit length,
//! giving constant relative error (within 2×) over the full `u64` range
//! with a fixed, tiny footprint.
//!
//! Two representations share the bucketing:
//!
//! * [`HistogramSnapshot`] — plain counters, the merge/quantile algebra
//!   (a commutative monoid; `crates/telemetry/tests/props.rs` pins it);
//! * [`AtomicHistogram`] — one shard's live recorder: relaxed atomic
//!   increments, readable lock-free at any time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 0 holds the value 0, bucket `i ≥ 1` holds values
/// with bit length `i` (`2^(i-1) ..= 2^i - 1`), so every `u64` has exactly
/// one bucket and boundaries are monotone.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index of `value`: its bit length (0 for 0). Total over `u64`
/// and monotone in `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `index` holds: 0 for bucket 0, `2^index − 1`
/// for the rest (saturating at `u64::MAX` for the final bucket).
///
/// # Panics
///
/// Panics if `index ≥ HISTOGRAM_BUCKETS`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// An immutable log2 histogram: per-bucket counts plus exact count, sum and
/// max of the recorded samples. Merging is element-wise addition (max of
/// maxes) — a commutative monoid with the empty histogram as identity, so
/// sharded-then-merged recording equals serial recording of the same
/// samples in any order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of recorded values (wrapping add — overflow takes
    /// ~5 × 10⁵ years of nanosecond samples).
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::new()
    }
}

impl HistogramSnapshot {
    /// The empty histogram (the merge identity).
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.max = self.max.max(value);
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`q` clamped to `0.0..=1.0`; 0 when empty). Log2 bucketing bounds
    /// the estimate within 2× of the true order statistic; the final
    /// bucket's report is additionally capped at [`max`](Self::max), which
    /// also makes `quantile(1.0)` exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the wanted sample, 1-based, at least 1 so q=0 is the min
        // bucket and q=1 the max bucket.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// One shard's live histogram: relaxed atomic counters, recorded to by the
/// owning worker and read lock-free by [`snapshot`](Self::snapshot) at any
/// time. `sum`/`max` race individually against in-flight records (each
/// field is independently atomic), so a mid-run snapshot is a consistent
/// *approximation*; once the recording side has quiesced it is exact.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// A zeroed histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: four relaxed atomic ops, no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Reads the current counters into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::new();
        for (dst, src) in snap.counts.iter_mut().zip(&self.counts) {
            *dst = src.load(Ordering::Relaxed);
        }
        snap.count = self.count.load(Ordering::Relaxed);
        snap.sum = self.sum.load(Ordering::Relaxed);
        snap.max = self.max.load(Ordering::Relaxed);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_total_and_monotone_at_the_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert!(bucket_upper_bound(i) < bucket_upper_bound(i + 1));
        }
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = HistogramSnapshot::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.max, 1000);
        assert_eq!(h.quantile(1.0), 1000);
        // The true p50 is 500; the log2 estimate is its bucket's upper
        // bound (within 2×).
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 estimate {p50}");
        assert!(h.quantile(0.0) >= 1);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = HistogramSnapshot::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn atomic_matches_serial() {
        let atomic = AtomicHistogram::new();
        let mut serial = HistogramSnapshot::new();
        for v in [0, 1, 7, 8, 1 << 20, u64::MAX, 3, 3, 3] {
            atomic.record(v);
            serial.record(v);
        }
        assert_eq!(atomic.snapshot(), serial);
    }
}
