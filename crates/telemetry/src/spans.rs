//! Span events and the fixed-capacity per-worker ring buffer they land in.
//!
//! A span is one timed region of the batch lifecycle (queue wait, `map_batch`,
//! lane drain, emitter reorder wait, …). Each recorder owns a private
//! [`SpanRing`] — a preallocated circular buffer — so recording a span is a
//! couple of stores into memory the worker already owns: no locks, no
//! allocation, no cross-core traffic. When the ring wraps, the *oldest*
//! events are overwritten and counted in [`SpanRing::dropped`]; a trace is a
//! window onto the tail of the run, never a reason to stall it.

/// What a [`SpanEvent`] records: a timed region or a sampled counter value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpanKind {
    /// A timed region — exported as a Chrome-trace complete duration event
    /// (`"ph":"X"`).
    #[default]
    Duration,
    /// A point-in-time counter sample (`arg` is the value, `dur_ns` is 0) —
    /// exported as a Chrome-trace counter event (`"ph":"C"`), which
    /// Perfetto renders as a value-over-time track.
    Counter,
}

/// One completed span: a named region on a track (worker/lane/emitter),
/// with start and duration in nanoseconds since the telemetry epoch —
/// or, for [`SpanKind::Counter`], one sampled value at one instant.
///
/// `name` is `&'static str` by design — span names are a fixed taxonomy
/// (see the Observability section of `ARCHITECTURE.md`), and a static name
/// keeps the event `Copy` and the hot path allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name, e.g. `"map_batch"`.
    pub name: &'static str,
    /// Duration event or counter sample.
    pub kind: SpanKind,
    /// Track the span belongs to (rendered as a Chrome-trace thread id).
    pub track: u32,
    /// Start time in nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for counter samples).
    pub dur_ns: u64,
    /// One free-form integer argument (batch index, lane occupancy, …):
    /// exported as `args.v` for durations, as the sampled series value for
    /// counters.
    pub arg: u64,
}

/// Fixed-capacity overwrite-oldest ring of [`SpanEvent`]s.
///
/// Single-owner by construction (each recorder holds its own ring), so no
/// synchronization is needed; capacity is allocated once up front.
#[derive(Debug)]
pub struct SpanRing {
    buf: Vec<SpanEvent>,
    capacity: usize,
    /// Index of the next write (== logical end of the ring).
    head: usize,
    /// Number of live events (≤ capacity).
    len: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` events (allocated now,
    /// never again). A zero capacity drops everything.
    pub fn with_capacity(capacity: usize) -> SpanRing {
        SpanRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full. Never allocates
    /// after construction.
    #[inline]
    pub fn push(&mut self, event: SpanEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the live events oldest-first, leaving the ring empty (its
    /// allocation is retained).
    pub fn drain_ordered(&mut self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.len);
        if self.len > 0 {
            // Oldest event sits at `head` once the ring has wrapped, at 0
            // before that.
            let start = if self.buf.len() < self.capacity {
                0
            } else {
                self.head
            };
            for i in 0..self.len {
                out.push(self.buf[(start + i) % self.buf.len()]);
            }
        }
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start_ns: u64) -> SpanEvent {
        SpanEvent {
            name: "t",
            kind: SpanKind::Duration,
            track: 0,
            start_ns,
            dur_ns: 1,
            arg: 0,
        }
    }

    #[test]
    fn drains_in_insertion_order_before_wrap() {
        let mut r = SpanRing::with_capacity(4);
        for i in 0..3 {
            r.push(ev(i));
        }
        let starts: Vec<u64> = r.drain_ordered().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, [0, 1, 2]);
        assert_eq!(r.dropped(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn overwrites_oldest_after_wrap() {
        let mut r = SpanRing::with_capacity(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.drain_ordered().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, [2, 3, 4]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = SpanRing::with_capacity(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert!(r.drain_ordered().is_empty());
    }
}
