//! Property tests for the log2-histogram algebra.
//!
//! Every number `gx-telemetry` reports rests on two facts: bucketing is a
//! total, monotone map from `u64` to a fixed bucket set, and snapshot
//! merging is a commutative monoid — so per-worker sharded recording
//! followed by a merge equals serial recording of the same samples in any
//! order (the same contract `BackendStats`/`PipelineStats` shards rely
//! on, pinned the same way in `crates/backend/tests/stats_props.rs`).
//!
//! Samples are drawn across all magnitudes (`raw >> shift`, shift 0..64),
//! so small latencies, mid-range ones and the saturating top bucket are
//! all exercised — a plain uniform `u64` draw would land in the top few
//! buckets almost every time.

use gx_telemetry::{
    bucket_index, bucket_upper_bound, AtomicHistogram, HistogramSnapshot, Telemetry,
    HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

/// One latency sample, magnitude-stratified over the full `u64` range.
fn sample() -> impl Strategy<Value = u64> {
    (0u64..=u64::MAX, 0u32..64).prop_map(|(v, s)| v >> s)
}

/// A histogram built by recording `values` serially.
fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bucketing is total (every `u64` maps into range) and each value
    /// falls strictly inside its bucket's bounds: above the previous
    /// bucket's upper bound, at or below its own.
    #[test]
    fn bucketing_is_total_and_bounds_hold(v in sample()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }

    /// Bucketing is monotone in the value, as the boundary sequence is in
    /// the index — larger samples never land in smaller buckets.
    #[test]
    fn bucketing_is_monotone(a in sample(), b in sample()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        prop_assert!(bucket_upper_bound(bucket_index(lo)) <= bucket_upper_bound(bucket_index(hi)));
    }

    /// Merge is commutative on every field: shard order never matters.
    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(sample(), 0..64),
        ys in prop::collection::vec(sample(), 0..64),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: folding shards pairwise in any grouping
    /// yields the same totals.
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(sample(), 0..48),
        ys in prop::collection::vec(sample(), 0..48),
        zs in prop::collection::vec(sample(), 0..48),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The empty histogram is the merge identity, in either position.
    #[test]
    fn empty_is_the_merge_identity(xs in prop::collection::vec(sample(), 0..64)) {
        let a = hist_of(&xs);
        let mut left = HistogramSnapshot::new();
        left.merge(&a);
        prop_assert_eq!(left, a);
        let mut right = a;
        right.merge(&HistogramSnapshot::new());
        prop_assert_eq!(right, a);
    }

    /// Sharded-then-merged equals serial: partitioning the sample stream
    /// across any number of [`AtomicHistogram`] shards and merging their
    /// snapshots reproduces the serial histogram exactly — the property
    /// that makes per-worker recording equivalent to a single recorder.
    #[test]
    fn sharded_then_merged_equals_serial(
        values in prop::collection::vec((sample(), 0usize..8), 0..128),
        n_shards in 1usize..8,
    ) {
        let shards: Vec<AtomicHistogram> =
            (0..n_shards).map(|_| AtomicHistogram::new()).collect();
        let mut serial = HistogramSnapshot::new();
        for &(v, slot) in &values {
            shards[slot % n_shards].record(v);
            serial.record(v);
        }
        let mut merged = HistogramSnapshot::new();
        for s in &shards {
            merged.merge(&s.snapshot());
        }
        prop_assert_eq!(merged, serial);
    }

    /// The same equivalence through the public handle: recording via one
    /// [`Recorder`](gx_telemetry::Recorder) per shard and snapshotting the
    /// [`Telemetry`] matches serial recording, and quantiles agree
    /// bucket-exactly.
    #[test]
    fn telemetry_snapshot_matches_serial(
        values in prop::collection::vec((sample(), 0usize..4), 1..96),
        n_shards in 1usize..5,
    ) {
        let telemetry = Telemetry::enabled();
        let h = telemetry.histogram("gx_prop_ns", "property-test histogram");
        let recorders: Vec<_> =
            (0..n_shards).map(|i| telemetry.recorder(i as u32)).collect();
        let mut serial = HistogramSnapshot::new();
        for &(v, slot) in &values {
            recorders[slot % n_shards].record(h, v);
            serial.record(v);
        }
        let snap = telemetry.snapshot().unwrap();
        let merged = snap.histogram("gx_prop_ns").unwrap();
        prop_assert_eq!(*merged, serial);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), serial.quantile(q));
        }
        prop_assert_eq!(merged.quantile(1.0), serial.max);
    }
}
