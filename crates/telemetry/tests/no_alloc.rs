//! The zero-cost-when-disabled guard: a disabled [`Recorder`] must never
//! allocate on the record path, and an enabled one must only allocate at
//! setup (shard + ring) and flush — never per event.
//!
//! The check is a counting `#[global_allocator]` wrapping the system
//! allocator, gated on a thread-local flag so that only the measured
//! region on the test thread counts — the libtest harness's own threads
//! allocate concurrently (progress output, timers) and must not bleed
//! into the tally.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use gx_telemetry::Telemetry;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocation during TLS teardown stays safe.
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn record_paths_do_not_allocate() {
    // Disabled handle: setup is free too (no Arc, no shard, no ring), and
    // the full per-event sequence — start, span, histogram, counter,
    // gauge — is a predicted branch per call, 10k times over.
    let telemetry = Telemetry::disabled();
    let h = telemetry.histogram("gx_wait_ns", "wait");
    let c = telemetry.counter("gx_steals_total", "steals");
    let g = telemetry.gauge("gx_depth", "depth");
    let mut rec = telemetry.recorder(0);
    let disabled = allocations(|| {
        for i in 0..10_000u64 {
            let t0 = rec.start();
            let dur = rec.span_arg("map_batch", t0, i);
            rec.record(h, dur);
            rec.counter_add(c, 1);
            rec.gauge_set(g, i);
            rec.counter_sample("depth", i);
        }
    });
    assert_eq!(disabled, 0, "disabled recorder allocated {disabled} times");

    // Enabled handle: shard and ring are preallocated by `recorder()`;
    // the per-event path indexes atomics and overwrites ring slots. The
    // ring is sized below the event count, so overwrite wraparound is
    // exercised too.
    let telemetry = Telemetry::enabled();
    let h = telemetry.histogram("gx_wait_ns", "wait");
    let c = telemetry.counter("gx_steals_total", "steals");
    let g = telemetry.gauge("gx_depth", "depth");
    let mut rec = telemetry.recorder(0);
    let enabled = allocations(|| {
        for i in 0..100_000u64 {
            let t0 = rec.start();
            let dur = rec.span_arg("map_batch", t0, i);
            rec.record(h, dur);
            rec.counter_add(c, 1);
            rec.gauge_set(g, i);
            rec.counter_sample("depth", i);
        }
    });
    assert_eq!(enabled, 0, "enabled hot path allocated {enabled} times");

    // Flush is where the enabled side is allowed to allocate.
    drop(rec);
    assert!(telemetry.snapshot().unwrap().counter("gx_steals_total") == Some(100_000));
}
