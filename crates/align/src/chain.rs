//! Minimap2-style chaining of seed anchors.
//!
//! Chaining is the stage that dominates paired-end mapping time in the
//! software baseline (paper Fig. 1, >65% of execution). The DP here follows
//! minimap2's formulation: anchors sorted by reference position are chained
//! with a concave gap cost, looking back at most [`ChainParams::max_lookback`]
//! predecessors. Evaluated predecessor pairs are counted as *cell updates*
//! so the GenDP fallback accelerator can be sized from measured work.

/// A seed match between read and reference (one strand; callers keep
/// separate anchor sets per strand).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Anchor {
    /// Position of the seed start on the read.
    pub read_pos: u32,
    /// Position of the seed start on the reference (chromosome-local or
    /// global, as long as it is consistent).
    pub ref_pos: u64,
}

/// A chain of anchors with its DP score.
#[derive(Clone, Debug)]
pub struct Chain {
    /// Indices into the anchor slice passed to [`chain_anchors`], in
    /// read-order.
    pub anchors: Vec<usize>,
    /// Chaining score.
    pub score: i32,
    /// Read span covered (start of first anchor .. start of last + k).
    pub read_start: u32,
    /// Reference span start.
    pub ref_start: u64,
    /// Reference span end (start of last anchor + k).
    pub ref_end: u64,
}

/// Chaining parameters (defaults follow minimap2's short-read settings).
#[derive(Clone, Copy, Debug)]
pub struct ChainParams {
    /// Seed (k-mer) length used to produce the anchors.
    pub kmer: u32,
    /// Maximum reference/read distance between chainable anchors.
    pub max_dist: u32,
    /// Maximum |gap| (difference between read and reference advance).
    pub max_gap: u32,
    /// How many predecessors each anchor examines.
    pub max_lookback: usize,
    /// Minimum score for a chain to be reported.
    pub min_score: i32,
    /// Minimum number of anchors for a chain to be reported.
    pub min_anchors: usize,
}

impl Default for ChainParams {
    fn default() -> ChainParams {
        ChainParams {
            kmer: 21,
            max_dist: 500,
            max_gap: 100,
            max_lookback: 50,
            min_score: 40,
            min_anchors: 2,
        }
    }
}

/// Result of chaining: the chains (best first) and the number of DP cell
/// updates evaluated.
#[derive(Clone, Debug, Default)]
pub struct ChainResult {
    /// Chains sorted by descending score.
    pub chains: Vec<Chain>,
    /// Predecessor evaluations performed (chaining "cell updates").
    pub cells: u64,
}

/// Chains `anchors` (will be sorted in place by (ref_pos, read_pos)).
///
/// Returns chains sorted by descending score. Anchors can belong to at most
/// one reported chain (greedy extraction, like minimap2's primary chains).
pub fn chain_anchors(anchors: &mut [Anchor], params: &ChainParams) -> ChainResult {
    if anchors.is_empty() {
        return ChainResult::default();
    }
    anchors.sort_unstable_by_key(|a| (a.ref_pos, a.read_pos));
    let n = anchors.len();
    let mut f = vec![0i32; n]; // best score ending at i
    let mut parent = vec![usize::MAX; n];
    let mut cells = 0u64;

    for i in 0..n {
        f[i] = params.kmer as i32;
        let lo = i.saturating_sub(params.max_lookback);
        for j in (lo..i).rev() {
            cells += 1;
            let a = &anchors[i];
            let b = &anchors[j];
            let dr = a.ref_pos - b.ref_pos; // >= 0 by sort order
            if dr > params.max_dist as u64 {
                break; // sorted by ref_pos: all earlier j are farther
            }
            if a.read_pos <= b.read_pos || dr == 0 {
                continue;
            }
            let dq = (a.read_pos - b.read_pos) as u64;
            if dq > params.max_dist as u64 {
                continue;
            }
            let gap = dr.abs_diff(dq);
            if gap > params.max_gap as u64 {
                continue;
            }
            let matched = dq.min(dr).min(params.kmer as u64) as i32;
            let cost = if gap == 0 {
                0
            } else {
                let g = gap as f64;
                (0.01 * params.kmer as f64 * g + 0.5 * g.log2()).ceil() as i32
            };
            let sc = f[j] + matched - cost;
            if sc > f[i] {
                f[i] = sc;
                parent[i] = j;
            }
        }
    }

    // Greedy chain extraction by descending end score.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(f[i]));
    let mut used = vec![false; n];
    let mut chains = Vec::new();
    for &end in &order {
        if used[end] || f[end] < params.min_score {
            continue;
        }
        let mut members = Vec::new();
        let mut cur = end;
        loop {
            if used[cur] {
                break; // ran into an anchor claimed by a better chain
            }
            members.push(cur);
            used[cur] = true;
            if parent[cur] == usize::MAX {
                break;
            }
            cur = parent[cur];
        }
        if members.len() < params.min_anchors {
            continue;
        }
        members.reverse();
        let first = anchors[members[0]];
        let last = anchors[*members.last().expect("members non-empty")];
        chains.push(Chain {
            score: f[end],
            read_start: first.read_pos,
            ref_start: first.ref_pos,
            ref_end: last.ref_pos + params.kmer as u64,
            anchors: members,
        });
    }
    chains.sort_by_key(|c| std::cmp::Reverse(c.score));
    ChainResult { chains, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ChainParams {
        ChainParams::default()
    }

    #[test]
    fn colinear_anchors_form_one_chain() {
        let mut anchors: Vec<Anchor> = (0..5)
            .map(|i| Anchor {
                read_pos: i * 30,
                ref_pos: 1000 + (i as u64) * 30,
            })
            .collect();
        let res = chain_anchors(&mut anchors, &params());
        assert_eq!(res.chains.len(), 1);
        assert_eq!(res.chains[0].anchors.len(), 5);
        assert_eq!(res.chains[0].ref_start, 1000);
        assert!(res.cells > 0);
    }

    #[test]
    fn distant_anchors_split_chains() {
        let mut anchors = vec![
            Anchor {
                read_pos: 0,
                ref_pos: 1000,
            },
            Anchor {
                read_pos: 30,
                ref_pos: 1030,
            },
            Anchor {
                read_pos: 0,
                ref_pos: 900_000,
            },
            Anchor {
                read_pos: 30,
                ref_pos: 900_030,
            },
        ];
        let res = chain_anchors(&mut anchors, &params());
        assert_eq!(res.chains.len(), 2);
    }

    #[test]
    fn gap_penalty_prefers_consistent_diagonal() {
        // Two candidate predecessors: one on-diagonal, one with a 50bp gap.
        let mut anchors = vec![
            Anchor {
                read_pos: 0,
                ref_pos: 1000,
            }, // on-diagonal
            Anchor {
                read_pos: 0,
                ref_pos: 1050,
            }, // off-diagonal (gap 50)
            Anchor {
                read_pos: 100,
                ref_pos: 1100,
            }, // target
        ];
        let res = chain_anchors(&mut anchors, &params());
        let best = &res.chains[0];
        // Chain should go through the on-diagonal anchor (index of (0,1000)).
        assert!(best.anchors.contains(&0), "chains: {:?}", res.chains);
    }

    #[test]
    fn empty_input() {
        let res = chain_anchors(&mut [], &params());
        assert!(res.chains.is_empty());
        assert_eq!(res.cells, 0);
    }

    #[test]
    fn min_score_filters_singletons() {
        let mut anchors = vec![Anchor {
            read_pos: 0,
            ref_pos: 5,
        }];
        let res = chain_anchors(&mut anchors, &params());
        assert!(res.chains.is_empty()); // single 21-mer scores 21 < 40
    }
}
