/// An affine-gap scoring scheme.
///
/// Penalties (`mismatch`, `gap_open`, `gap_ext`) are stored as positive
/// magnitudes; a gap of length `k` costs `gap_open + k * gap_ext`. The
/// default [`Scoring::short_read`] scheme is minimap2's `sr` preset
/// (`-A2 -B8 -O12 -E2`), under which a perfect 150 bp read scores 300 and
/// the paper's Table 1 scores fall out exactly:
///
/// ```
/// use gx_align::Scoring;
/// let s = Scoring::short_read();
/// assert_eq!(s.perfect(150), 300);
/// assert_eq!(s.perfect(150) - s.mismatch_loss(), 290);  // 1 mismatch
/// assert_eq!(s.perfect(150) - s.gap_cost(1), 286);      // 1 deletion
/// assert_eq!(s.perfect(149) - s.gap_cost(1), 284);      // 1 insertion
/// ```
///
/// minimap2's second affine function (`-O2 32 -E2 1`) only changes gap costs
/// for runs longer than 20 bases, which never occur in the light-alignment
/// regime; we use the single affine function throughout for consistency
/// between the analytic scores and the DP aligners.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Scoring {
    /// Score added per matching base (positive).
    pub match_score: i32,
    /// Penalty per mismatching base (positive magnitude).
    pub mismatch: i32,
    /// Gap opening penalty (positive magnitude).
    pub gap_open: i32,
    /// Gap extension penalty per base, applied to every gap base including
    /// the first (positive magnitude).
    pub gap_ext: i32,
}

impl Scoring {
    /// minimap2 short-read preset: `+2 / -8 / 12 / 2`.
    pub fn short_read() -> Scoring {
        Scoring {
            match_score: 2,
            mismatch: 8,
            gap_open: 12,
            gap_ext: 2,
        }
    }

    /// minimap2 long-read (map-pb-like) preset: `+2 / -5 / 4 / 2`. Used for
    /// the §4.7 long-read pipeline where higher error rates make the
    /// short-read penalties too harsh.
    pub fn long_read() -> Scoring {
        Scoring {
            match_score: 2,
            mismatch: 5,
            gap_open: 4,
            gap_ext: 2,
        }
    }

    /// Score of a perfect (all-match) alignment of `len` bases.
    #[inline]
    pub fn perfect(&self, len: usize) -> i32 {
        self.match_score * len as i32
    }

    /// Cost of a gap run of `len` bases (positive magnitude). A zero-length
    /// gap costs nothing.
    #[inline]
    pub fn gap_cost(&self, len: u32) -> i32 {
        if len == 0 {
            0
        } else {
            self.gap_open + self.gap_ext * len as i32
        }
    }

    /// Score delta of turning one match into a mismatch.
    #[inline]
    pub fn mismatch_loss(&self) -> i32 {
        self.match_score + self.mismatch
    }

    /// Score of substituting base `a` with base `b` (match bonus or mismatch
    /// penalty).
    #[inline]
    pub fn substitution(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            -self.mismatch
        }
    }

    /// Analytic score of an ungapped alignment of `len` bases with
    /// `mismatches` mismatching positions.
    #[inline]
    pub fn ungapped(&self, len: usize, mismatches: usize) -> i32 {
        debug_assert!(mismatches <= len);
        self.match_score * (len - mismatches) as i32 - self.mismatch * mismatches as i32
    }
}

impl Default for Scoring {
    /// The short-read preset.
    fn default() -> Scoring {
        Scoring::short_read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_from_analytic_scores() {
        // Reproduces the paper's Table 1 for 150 bp reads.
        let s = Scoring::short_read();
        let perfect = s.perfect(150);
        assert_eq!(perfect, 300);
        // 1 mismatch
        assert_eq!(s.ungapped(150, 1), 290);
        // 1 deletion (all 150 read bases still match)
        assert_eq!(perfect - s.gap_cost(1), 286);
        // 1 insertion (149 read bases match)
        assert_eq!(s.perfect(149) - s.gap_cost(1), 284);
        // 2..5 consecutive deletions
        assert_eq!(perfect - s.gap_cost(2), 284);
        assert_eq!(perfect - s.gap_cost(3), 282);
        assert_eq!(perfect - s.gap_cost(4), 280);
        assert_eq!(perfect - s.gap_cost(5), 278);
        // 2 mismatches
        assert_eq!(s.ungapped(150, 2), 280);
        // 2 consecutive insertions
        assert_eq!(s.perfect(148) - s.gap_cost(2), 280);
        // 1 mismatch & 1 deletion
        assert_eq!(s.ungapped(150, 1) - s.gap_cost(1), 276);
    }

    #[test]
    fn gap_cost_zero_is_free() {
        assert_eq!(Scoring::short_read().gap_cost(0), 0);
    }

    #[test]
    fn substitution_signs() {
        let s = Scoring::short_read();
        assert_eq!(s.substitution(1, 1), 2);
        assert_eq!(s.substitution(1, 2), -8);
    }
}
