use crate::Scoring;
use gx_genome::{Cigar, CigarOp, DnaSeq};

/// Score value treated as minus infinity (kept far from `i32::MIN` so that
/// subtracting penalties cannot overflow).
pub(crate) const NEG_INF: i32 = i32::MIN / 4;

/// Boundary conditions of the affine-gap aligner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlignMode {
    /// Both sequences aligned end to end (Needleman–Wunsch).
    Global,
    /// The query aligns end to end; the target has free (unpenalized) start
    /// and end overhangs. This is the "fit" alignment a read mapper performs
    /// against a reference window.
    Fit,
    /// Best-scoring local alignment (Smith–Waterman).
    Local,
}

/// Result of a pairwise alignment.
#[derive(Clone, Debug)]
pub struct Alignment {
    /// Alignment score under the [`Scoring`] used.
    pub score: i32,
    /// CIGAR in query orientation using `=`/`X`/`I`/`D` ops. `I` consumes
    /// query, `D` consumes target.
    pub cigar: Cigar,
    /// First aligned query position (non-zero only in local mode).
    pub query_start: usize,
    /// One past the last aligned query position.
    pub query_end: usize,
    /// First aligned target position.
    pub target_start: usize,
    /// One past the last aligned target position.
    pub target_end: usize,
    /// Number of DP cells computed — the paper's "cell updates", used to
    /// express fallback work in MCUPS for GenDP sizing.
    pub cells: u64,
}

impl Alignment {
    /// Number of mismatching bases (from `X` runs).
    pub fn mismatches(&self) -> u64 {
        self.cigar.mismatch_bases()
    }
}

/// Reusable DP workspace for [`align`] and
/// [`banded_align`](crate::banded_align): traceback matrix, rolling score
/// rows, F column and unpacked code buffers. Buffers grow to the high-water
/// mark of the alignments they have seen and are re-filled (never
/// reallocated) on subsequent calls, so a scratch owned per mapping session
/// makes the DP fallback allocation-free in steady state.
#[derive(Default, Debug)]
pub struct AlignScratch {
    pub(crate) tb: Vec<u8>,
    pub(crate) h_prev: Vec<i32>,
    pub(crate) h_cur: Vec<i32>,
    pub(crate) f_col: Vec<i32>,
    pub(crate) qcodes: Vec<u8>,
    pub(crate) tcodes: Vec<u8>,
}

impl AlignScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> AlignScratch {
        AlignScratch::default()
    }
}

// Traceback encoding, one byte per cell:
//   bits 0-1: H-matrix choice: 0 = diagonal, 1 = E (deletion), 2 = F
//             (insertion), 3 = stop (local-zero or boundary)
//   bit 2:    E extended from E (set) vs opened from H (clear)
//   bit 3:    F extended from F (set) vs opened from H (clear)
const H_DIAG: u8 = 0;
const H_E: u8 = 1;
const H_F: u8 = 2;
const H_STOP: u8 = 3;
const E_EXT: u8 = 1 << 2;
const F_EXT: u8 = 1 << 3;

/// Aligns `query` against `target` with affine gap penalties and full
/// traceback.
///
/// Returns the best [`Alignment`] under `mode`'s boundary conditions. The
/// full DP matrix is computed: memory is `O(|q| * |t|)` for traceback, so
/// use [`banded_align`](crate::banded_align) for long sequences.
///
/// # Panics
///
/// Panics if either sequence is empty.
pub fn align(query: &DnaSeq, target: &DnaSeq, scoring: &Scoring, mode: AlignMode) -> Alignment {
    align_with(query, target, scoring, mode, &mut AlignScratch::new())
}

/// [`align`] using caller-owned scratch buffers — identical result, no
/// allocation once `scratch` has grown to the workload's high-water mark.
pub fn align_with(
    query: &DnaSeq,
    target: &DnaSeq,
    scoring: &Scoring,
    mode: AlignMode,
    scratch: &mut AlignScratch,
) -> Alignment {
    assert!(
        !query.is_empty() && !target.is_empty(),
        "cannot align empty sequences"
    );
    let n = query.len();
    let m = target.len();
    let open = scoring.gap_open + scoring.gap_ext;
    let ext = scoring.gap_ext;

    let AlignScratch {
        tb,
        h_prev,
        h_cur,
        f_col,
        qcodes,
        tcodes,
    } = scratch;
    tb.clear();
    tb.resize((n + 1) * (m + 1), 0u8);
    let idx = |i: usize, j: usize| i * (m + 1) + j;

    // Rolling rows for H and per-row E; column array for F.
    h_prev.clear();
    h_prev.resize(m + 1, 0i32);
    h_cur.clear();
    h_cur.resize(m + 1, 0i32);
    f_col.clear();
    f_col.resize(m + 1, NEG_INF);

    // Row 0 boundary.
    for j in 0..=m {
        h_prev[j] = match mode {
            AlignMode::Global => {
                if j == 0 {
                    0
                } else {
                    -scoring.gap_cost(j as u32)
                }
            }
            AlignMode::Fit | AlignMode::Local => 0,
        };
        tb[idx(0, j)] = if mode == AlignMode::Global && j > 0 {
            H_E | E_EXT // walk left along row 0
        } else {
            H_STOP
        };
    }

    let mut best = (NEG_INF, 0usize, 0usize); // (score, i, j) for local
    let mut cells = 0u64;
    query.codes_into(0..n, qcodes);
    target.codes_into(0..m, tcodes);

    for i in 1..=n {
        // Column 0 boundary.
        h_cur[0] = match mode {
            AlignMode::Global | AlignMode::Fit => -scoring.gap_cost(i as u32),
            AlignMode::Local => 0,
        };
        tb[idx(i, 0)] = match mode {
            AlignMode::Global | AlignMode::Fit => H_F | F_EXT,
            AlignMode::Local => H_STOP,
        };
        let mut e_row = NEG_INF;
        let qi = qcodes[i - 1];
        for j in 1..=m {
            cells += 1;
            let mut flags = 0u8;

            // E: gap consuming target (deletion w.r.t. the query).
            let e_open = h_cur[j - 1] - open;
            let e_extend = e_row - ext;
            e_row = if e_extend > e_open {
                flags |= E_EXT;
                e_extend
            } else {
                e_open
            };

            // F: gap consuming query (insertion w.r.t. the query).
            let f_open = h_prev[j] - open;
            let f_extend = f_col[j] - ext;
            f_col[j] = if f_extend > f_open {
                flags |= F_EXT;
                f_extend
            } else {
                f_open
            };

            let diag = h_prev[j - 1] + scoring.substitution(qi, tcodes[j - 1]);

            let (mut h, mut choice) = (diag, H_DIAG);
            if e_row > h {
                h = e_row;
                choice = H_E;
            }
            if f_col[j] > h {
                h = f_col[j];
                choice = H_F;
            }
            if mode == AlignMode::Local && h < 0 {
                h = 0;
                choice = H_STOP;
            }
            h_cur[j] = h;
            tb[idx(i, j)] = flags | choice;

            if mode == AlignMode::Local && h > best.0 {
                best = (h, i, j);
            }
        }
        std::mem::swap(h_prev, h_cur);
    }
    // h_prev now holds row n.

    let (score, end_i, end_j) = match mode {
        AlignMode::Global => (h_prev[m], n, m),
        AlignMode::Fit => {
            let (mut bj, mut bs) = (0usize, NEG_INF);
            #[allow(clippy::needless_range_loop)] // j is a coordinate, not just an index
            for j in 0..=m {
                if h_prev[j] > bs {
                    bs = h_prev[j];
                    bj = j;
                }
            }
            (bs, n, bj)
        }
        AlignMode::Local => (best.0.max(0), best.1, best.2),
    };

    let (cigar, start_i, start_j) = traceback(tb, m, end_i, end_j, qcodes, tcodes);
    Alignment {
        score,
        cigar,
        query_start: start_i,
        query_end: end_i,
        target_start: start_j,
        target_end: end_j,
        cells,
    }
}

/// Walks the traceback matrix from `(end_i, end_j)` back to a stop cell,
/// returning the CIGAR (query orientation) and the start coordinates.
fn traceback(
    tb: &[u8],
    m: usize,
    end_i: usize,
    end_j: usize,
    qcodes: &[u8],
    tcodes: &[u8],
) -> (Cigar, usize, usize) {
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    #[derive(PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut rev = Cigar::new();
    let (mut i, mut j) = (end_i, end_j);
    let mut state = State::H;
    loop {
        match state {
            State::H => {
                let choice = tb[idx(i, j)] & 3;
                match choice {
                    H_DIAG => {
                        let op = if qcodes[i - 1] == tcodes[j - 1] {
                            CigarOp::Equal
                        } else {
                            CigarOp::Diff
                        };
                        rev.push(op, 1);
                        i -= 1;
                        j -= 1;
                    }
                    H_E => state = State::E,
                    H_F => state = State::F,
                    _ => break, // H_STOP
                }
            }
            State::E => {
                let extended = tb[idx(i, j)] & E_EXT != 0;
                rev.push(CigarOp::Del, 1);
                j -= 1;
                if !extended {
                    state = State::H;
                }
                if j == 0 && state == State::E {
                    break;
                }
            }
            State::F => {
                let extended = tb[idx(i, j)] & F_EXT != 0;
                rev.push(CigarOp::Ins, 1);
                i -= 1;
                if !extended {
                    state = State::H;
                }
                if i == 0 && state == State::F {
                    break;
                }
            }
        }
        if i == 0 && j == 0 {
            break;
        }
        if i == 0 && matches!(state, State::H) {
            // Remaining leftward movement is only meaningful in global mode
            // (handled by the stored H_E/E_EXT boundary codes) or means we
            // reached the free target prefix (fit/local): stop.
            if tb[idx(0, j)] & 3 == H_STOP {
                break;
            }
        }
    }
    (rev.reversed(), i, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn global_identity() {
        let a = align(
            &seq("ACGTACGT"),
            &seq("ACGTACGT"),
            &Scoring::short_read(),
            AlignMode::Global,
        );
        assert_eq!(a.score, 16);
        assert_eq!(a.cigar.to_string(), "8=");
        assert_eq!(a.cells, 64);
    }

    #[test]
    fn global_one_mismatch() {
        let a = align(
            &seq("ACGTACGT"),
            &seq("ACGAACGT"),
            &Scoring::short_read(),
            AlignMode::Global,
        );
        assert_eq!(a.score, 14 - 8);
        assert_eq!(a.cigar.to_string(), "3=1X4=");
    }

    #[test]
    fn global_deletion() {
        // target has 2 extra bases -> deletion (consumes target)
        let a = align(
            &seq("ACGTACGT"),
            &seq("ACGTGGACGT"),
            &Scoring::short_read(),
            AlignMode::Global,
        );
        assert_eq!(a.score, 16 - 16); // 8 matches - (12 + 2*2)
        assert_eq!(a.cigar.to_string(), "4=2D4=");
    }

    #[test]
    fn global_insertion() {
        let a = align(
            &seq("ACGTGGACGT"),
            &seq("ACGTACGT"),
            &Scoring::short_read(),
            AlignMode::Global,
        );
        assert_eq!(a.score, 16 - 16);
        assert_eq!(a.cigar.to_string(), "4=2I4=");
    }

    #[test]
    fn fit_finds_offset() {
        let a = align(
            &seq("ACGTACGT"),
            &seq("TTTTACGTACGTTTTT"),
            &Scoring::short_read(),
            AlignMode::Fit,
        );
        assert_eq!(a.score, 16);
        assert_eq!(a.target_start, 4);
        assert_eq!(a.target_end, 12);
        assert_eq!(a.cigar.to_string(), "8=");
        assert_eq!(a.cigar.query_len(), 8);
    }

    #[test]
    fn fit_with_indel() {
        // read has 2 inserted bases in the middle of a window context
        let a = align(
            &seq("ACGTACGTGGTTACTTAC"),
            &seq("CCCCACGTACGTTTACTTACCCC"),
            &Scoring::short_read(),
            AlignMode::Fit,
        );
        // 16 matching bases * 2 ... verify query fully consumed
        assert_eq!(a.cigar.query_len(), 18);
        assert!(a.cigar.gap_bases() >= 2);
    }

    #[test]
    fn local_extracts_core() {
        let a = align(
            &seq("TTTTACGTACGTTTTT"),
            &seq("GGGGACGTACGTGGGG"),
            &Scoring::short_read(),
            AlignMode::Local,
        );
        assert_eq!(a.score, 16);
        assert_eq!(a.cigar.to_string(), "8=");
        assert_eq!(a.query_start, 4);
        assert_eq!(a.target_start, 4);
    }

    #[test]
    fn local_never_negative() {
        let a = align(
            &seq("AAAA"),
            &seq("TTTT"),
            &Scoring::short_read(),
            AlignMode::Local,
        );
        assert_eq!(a.score, 0);
    }

    #[test]
    fn fit_cigar_consumes_whole_query() {
        let q = seq("ACGGTTACGGTAGACCA");
        let t = seq("TTACGGTTACGGTAGACCATT");
        let a = align(&q, &t, &Scoring::short_read(), AlignMode::Fit);
        assert_eq!(a.cigar.query_len() as usize, q.len());
        assert_eq!(a.target_end - a.target_start, a.cigar.ref_len() as usize);
    }

    #[test]
    fn global_score_matches_cigar_reconstruction() {
        let s = Scoring::short_read();
        let q = seq("ACGTACGTACGTAC");
        let t = seq("ACGTACCGTACGTC");
        let a = align(&q, &t, &s, AlignMode::Global);
        // Recompute score from CIGAR.
        let mut score = 0i32;
        for &(n, op) in a.cigar.runs() {
            score += match op {
                gx_genome::CigarOp::Equal => s.match_score * n as i32,
                gx_genome::CigarOp::Diff => -s.mismatch * n as i32,
                gx_genome::CigarOp::Ins | gx_genome::CigarOp::Del => -s.gap_cost(n),
                _ => 0,
            };
        }
        assert_eq!(score, a.score);
    }
}
