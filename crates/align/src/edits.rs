//! Enumeration of edit variations and their alignment scores (paper Table 1).
//!
//! The paper enumerates every combination of edits a 150 bp read can carry
//! while still scoring at least 276 under the short-read scheme, and observes
//! that all combinations *strictly above* 276 consist of a single edit type.
//! That observation motivates the light alignment algorithm.

use crate::Scoring;

/// One edit combination: `mismatches` substitutions plus a single run of
/// `insertions` and a single run of `deletions`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EditCase {
    /// Number of mismatching bases (not necessarily consecutive).
    pub mismatches: u32,
    /// Length of one consecutive insertion run.
    pub insertions: u32,
    /// Length of one consecutive deletion run.
    pub deletions: u32,
}

impl EditCase {
    /// The perfect, edit-free case.
    pub fn none() -> EditCase {
        EditCase {
            mismatches: 0,
            insertions: 0,
            deletions: 0,
        }
    }

    /// Number of distinct edit *types* present.
    pub fn edit_types(&self) -> u32 {
        (self.mismatches > 0) as u32 + (self.insertions > 0) as u32 + (self.deletions > 0) as u32
    }

    /// Analytic alignment score of a read of `read_len` bases carrying this
    /// edit combination.
    pub fn score(&self, read_len: usize, scoring: &Scoring) -> i32 {
        let matched = read_len as u32 - self.mismatches - self.insertions;
        scoring.match_score * matched as i32
            - scoring.mismatch * self.mismatches as i32
            - scoring.gap_cost(self.insertions)
            - scoring.gap_cost(self.deletions)
    }

    /// Human-readable description matching the paper's Table 1 wording.
    pub fn describe(&self) -> String {
        if self.edit_types() == 0 {
            return "None".to_string();
        }
        let mut parts = Vec::new();
        if self.mismatches > 0 {
            parts.push(plural(self.mismatches, "Mismatch", "Mismatches"));
        }
        if self.insertions > 0 {
            parts.push(run(self.insertions, "Insertion", "Insertions"));
        }
        if self.deletions > 0 {
            parts.push(run(self.deletions, "Deletion", "Deletions"));
        }
        parts.join(" & ")
    }
}

fn plural(n: u32, one: &str, many: &str) -> String {
    if n == 1 {
        format!("{n} {one}")
    } else {
        format!("{n} {many}")
    }
}

fn run(n: u32, one: &str, many: &str) -> String {
    if n == 1 {
        format!("{n} {one}")
    } else {
        format!("{n} Consecutive {many}")
    }
}

/// Enumerates every edit case of a `read_len` read scoring at least
/// `min_score`, sorted by descending score (ties: fewer edit types first,
/// then fewer total edited bases).
pub fn enumerate_cases(read_len: usize, scoring: &Scoring, min_score: i32) -> Vec<(EditCase, i32)> {
    let mut out = Vec::new();
    // Bound the search: an edit of any kind costs at least min(mismatch_loss,
    // gap_ext) per base, so cap counts generously.
    let cap = 64u32.min(read_len as u32 / 2);
    for mm in 0..=cap {
        for ins in 0..=cap {
            for del in 0..=cap {
                let case = EditCase {
                    mismatches: mm,
                    insertions: ins,
                    deletions: del,
                };
                let score = case.score(read_len, scoring);
                if score >= min_score {
                    out.push((case, score));
                }
            }
        }
    }
    out.sort_by_key(|(c, s)| {
        (
            std::cmp::Reverse(*s),
            c.edit_types(),
            c.mismatches + c.insertions + c.deletions,
        )
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the paper's Table 1 (150 bp, threshold 276). The paper
    /// lists 11 rows; the same enumeration also admits "3 Consecutive
    /// Insertions" (2·147 − 12 − 2·3 = 276) and "6 Consecutive Deletions"
    /// (300 − 12 − 2·6 = 276) at exactly the threshold, which the paper's
    /// table omits — see EXPERIMENTS.md.
    #[test]
    fn table1_contents() {
        let cases = enumerate_cases(150, &Scoring::short_read(), 276);
        let rendered: Vec<(String, i32)> = cases.iter().map(|(c, s)| (c.describe(), *s)).collect();
        let expect = [
            ("None", 300),
            ("1 Mismatch", 290),
            ("1 Deletion", 286),
            ("1 Insertion", 284),
            ("2 Consecutive Deletions", 284),
            ("3 Consecutive Deletions", 282),
            ("2 Mismatches", 280),
            ("2 Consecutive Insertions", 280),
            ("4 Consecutive Deletions", 280),
            ("5 Consecutive Deletions", 278),
            ("1 Mismatch & 1 Deletion", 276),
            ("3 Consecutive Insertions", 276),
            ("6 Consecutive Deletions", 276),
        ];
        for (desc, score) in expect {
            assert!(
                rendered.contains(&(desc.to_string(), score)),
                "missing {desc} @ {score}; got {rendered:?}"
            );
        }
        assert_eq!(rendered.len(), expect.len(), "extra rows: {rendered:?}");
    }

    /// The paper's Observation: everything strictly above the threshold is a
    /// single edit type.
    #[test]
    fn single_type_above_threshold() {
        for (case, score) in enumerate_cases(150, &Scoring::short_read(), 276) {
            if score > 276 {
                assert!(case.edit_types() <= 1, "{case:?} scores {score}");
            }
        }
    }

    #[test]
    fn describe_wording() {
        assert_eq!(EditCase::none().describe(), "None");
        assert_eq!(
            EditCase {
                mismatches: 0,
                insertions: 0,
                deletions: 2
            }
            .describe(),
            "2 Consecutive Deletions"
        );
        assert_eq!(
            EditCase {
                mismatches: 1,
                insertions: 0,
                deletions: 1
            }
            .describe(),
            "1 Mismatch & 1 Deletion"
        );
    }

    /// Cross-check the analytic scores against the DP aligner on concrete
    /// sequences embodying each case.
    #[test]
    fn analytic_scores_match_dp() {
        use crate::{align, AlignMode};
        use gx_genome::{Base, DnaSeq};
        let scoring = Scoring::short_read();
        let reference: DnaSeq = (0..200)
            .map(|i| Base::from_code(((i * 7 + i / 3) % 4) as u8))
            .collect();
        let window = reference.subseq(0..180);
        for (case, score) in enumerate_cases(150, &scoring, 276) {
            if case.mismatches > 0 && (case.insertions > 0 || case.deletions > 0) {
                continue; // mixed cases positioned adjacently can be rescored
                          // by DP differently; single-type is what matters
            }
            // Build a read with the given edit at position 60.
            let mut read = DnaSeq::new();
            let p = 60usize;
            let del = case.deletions as usize;
            for i in 0..p {
                read.push(window.get(i));
            }
            for _ in 0..case.insertions {
                // Insert a base differing from the next reference base so DP
                // cannot absorb it as a match.
                read.push(window.get(p).complement());
            }
            let mut i = p + del;
            while read.len() < 150 {
                read.push(window.get(i));
                i += 1;
            }
            for k in 0..case.mismatches as usize {
                let pos = 20 + k * 37; // spread mismatches out
                read.set(pos, read.get(pos).complement());
            }
            let a = align(&read, &window, &scoring, AlignMode::Fit);
            assert!(
                a.score >= score,
                "case {case:?}: DP {} < analytic {score}",
                a.score
            );
        }
    }
}
