//! Alignment substrate for the GenPairX reproduction.
//!
//! Provides the dynamic-programming machinery that GenPair's light alignment
//! is designed to *avoid*, and that the baseline mapper and the DP fallback
//! path rely on:
//!
//! * [`Scoring`] — the minimap2 short-read scoring scheme (match +2,
//!   mismatch −8, gap open 12, gap extend 2) under which a perfect 150 bp
//!   read scores 300, reproducing the paper's Table 1 exactly.
//! * [`align`] / [`banded_align`] — affine-gap aligners with traceback,
//!   supporting global, fit (query-global/target-free) and local modes. All
//!   aligners count *cell updates* so the harness can size the GenDP
//!   fallback accelerator in MCUPS.
//! * [`chain`] — minimap2-style chaining DP over seed anchors.
//! * [`edits`] — enumeration of single-/double-edit variations and their
//!   scores (paper Table 1).
//!
//! ```
//! use gx_align::{align, AlignMode, Scoring};
//! use gx_genome::DnaSeq;
//!
//! # fn main() -> Result<(), gx_genome::GenomeError> {
//! let q = DnaSeq::from_ascii(b"ACGTACGTACGT")?;
//! let t = DnaSeq::from_ascii(b"TTACGTACGTACGTTT")?;
//! let a = align(&q, &t, &Scoring::short_read(), AlignMode::Fit);
//! assert_eq!(a.score, 24); // 12 matches x 2
//! assert_eq!(a.cigar.to_string(), "12=");
//! assert_eq!(a.target_start, 2);
//! # Ok(())
//! # }
//! ```

mod banded;
pub mod chain;
mod dp;
pub mod edits;
mod scoring;

pub use banded::{banded_align, banded_align_with};
pub use dp::{align, align_with, AlignMode, AlignScratch, Alignment};
pub use scoring::Scoring;
