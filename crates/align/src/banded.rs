use crate::dp::{AlignMode, AlignScratch, Alignment, NEG_INF};
use crate::Scoring;
use gx_genome::{Cigar, CigarOp, DnaSeq};

const H_DIAG: u8 = 0;
const H_E: u8 = 1;
const H_F: u8 = 2;
const H_STOP: u8 = 3;
const E_EXT: u8 = 1 << 2;
const F_EXT: u8 = 1 << 3;

/// Banded affine-gap alignment (global or fit mode).
///
/// Only cells within `band` diagonals of the corridor spanned by the two
/// sequence lengths are computed, bounding both time and traceback memory to
/// `O(|q| * (|t| - |q| + 2 * band))`. This is the aligner the DP fallback and
/// long-read paths use — GenDP accelerates exactly this banded
/// Smith–Waterman shape.
///
/// Alignments whose optimal path leaves the band return the best in-band
/// path, which is the same behaviour as minimap2's banded extension.
///
/// # Panics
///
/// Panics if either sequence is empty, `band == 0`, or `mode` is
/// [`AlignMode::Local`] (local mode has no meaningful corridor).
pub fn banded_align(
    query: &DnaSeq,
    target: &DnaSeq,
    scoring: &Scoring,
    band: usize,
    mode: AlignMode,
) -> Alignment {
    banded_align_with(query, target, scoring, band, mode, &mut AlignScratch::new())
}

/// [`banded_align`] using caller-owned scratch buffers — identical result,
/// no allocation once `scratch` has grown to the workload's high-water mark.
pub fn banded_align_with(
    query: &DnaSeq,
    target: &DnaSeq,
    scoring: &Scoring,
    band: usize,
    mode: AlignMode,
    scratch: &mut AlignScratch,
) -> Alignment {
    assert!(
        !query.is_empty() && !target.is_empty(),
        "cannot align empty sequences"
    );
    assert!(band > 0, "band must be positive");
    assert!(
        mode != AlignMode::Local,
        "banded alignment supports Global and Fit modes"
    );
    let n = query.len();
    let m = target.len();
    let open = scoring.gap_open + scoring.gap_ext;
    let ext = scoring.gap_ext;

    // Allowed shift (j - i) range: the natural corridor plus the band.
    let lo_shift = (m as i64 - n as i64).min(0) - band as i64;
    let hi_shift = (m as i64 - n as i64).max(0) + band as i64;
    let width = (hi_shift - lo_shift + 1) as usize;

    let jmin = |i: usize| -> usize { (i as i64 + lo_shift).max(0) as usize };
    let jmax = |i: usize| -> usize { ((i as i64 + hi_shift) as usize).min(m) };

    let AlignScratch {
        tb,
        h_prev,
        h_cur,
        f_col,
        qcodes,
        tcodes,
    } = scratch;
    tb.clear();
    tb.resize((n + 1) * width, H_STOP);
    let tb_idx = |i: usize, j: usize| -> usize {
        let off = j as i64 - (i as i64 + lo_shift);
        debug_assert!((0..width as i64).contains(&off), "traceback outside band");
        i * width + off as usize
    };

    h_prev.clear();
    h_prev.resize(m + 2, NEG_INF);
    h_cur.clear();
    h_cur.resize(m + 2, NEG_INF);
    f_col.clear();
    f_col.resize(m + 2, NEG_INF);

    // Row 0.
    for j in jmin(0)..=jmax(0) {
        h_prev[j] = match mode {
            AlignMode::Global => -scoring.gap_cost(j as u32),
            _ => 0,
        };
        tb[tb_idx(0, j)] = if mode == AlignMode::Global && j > 0 {
            H_E | E_EXT
        } else {
            H_STOP
        };
    }

    query.codes_into(0..n, qcodes);
    target.codes_into(0..m, tcodes);
    let mut cells = 0u64;

    for i in 1..=n {
        let (lo, hi) = (jmin(i), jmax(i));
        let mut e_row = NEG_INF;
        if lo == 0 {
            h_cur[0] = -scoring.gap_cost(i as u32);
            tb[tb_idx(i, 0)] = H_F | F_EXT;
        }
        let qi = qcodes[i - 1];
        let start = lo.max(1);
        for j in start..=hi {
            cells += 1;
            let mut flags = 0u8;

            let h_left = if j > lo { h_cur[j - 1] } else { NEG_INF };
            let e_open = h_left.saturating_add(-open);
            let e_extend = e_row - ext;
            e_row = if e_extend > e_open {
                flags |= E_EXT;
                e_extend
            } else {
                e_open
            };

            // h_prev[j] / f_col[j] are valid only if j was inside row i-1's band.
            let in_prev = j >= jmin(i - 1) && j <= jmax(i - 1);
            let h_up = if in_prev { h_prev[j] } else { NEG_INF };
            let f_up = if in_prev { f_col[j] } else { NEG_INF };
            let f_open = h_up.saturating_add(-open);
            let f_extend = f_up - ext;
            f_col[j] = if f_extend > f_open {
                flags |= F_EXT;
                f_extend
            } else {
                f_open
            };

            let in_prev_diag = j > jmin(i - 1) && j - 1 <= jmax(i - 1);
            let h_diag = if in_prev_diag { h_prev[j - 1] } else { NEG_INF };
            let diag = h_diag.saturating_add(scoring.substitution(qi, tcodes[j - 1]));

            let (mut h, mut choice) = (diag, H_DIAG);
            if e_row > h {
                h = e_row;
                choice = H_E;
            }
            if f_col[j] > h {
                h = f_col[j];
                choice = H_F;
            }
            h_cur[j] = h;
            tb[tb_idx(i, j)] = flags | choice;
        }
        // Invalidate cells just outside the band so the next row cannot read
        // stale values.
        if hi < m + 1 {
            h_cur[hi + 1] = NEG_INF;
            f_col[hi + 1] = NEG_INF;
        }
        if start > 0 {
            h_cur[start - 1] = if start > lo {
                h_cur[start - 1]
            } else {
                NEG_INF
            };
        }
        std::mem::swap(h_prev, h_cur);
    }

    let (score, end_j) = match mode {
        AlignMode::Global => (h_prev[m], m),
        _ => {
            let (mut bj, mut bs) = (jmin(n), NEG_INF);
            #[allow(clippy::needless_range_loop)] // j indexes two arrays in lockstep
            for j in jmin(n)..=jmax(n) {
                if h_prev[j] > bs {
                    bs = h_prev[j];
                    bj = j;
                }
            }
            (bs, bj)
        }
    };

    // Traceback within the band.
    #[derive(PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut rev = Cigar::new();
    let (mut i, mut j) = (n, end_j);
    let mut state = State::H;
    loop {
        match state {
            State::H => match tb[tb_idx(i, j)] & 3 {
                H_DIAG => {
                    let op = if qcodes[i - 1] == tcodes[j - 1] {
                        CigarOp::Equal
                    } else {
                        CigarOp::Diff
                    };
                    rev.push(op, 1);
                    i -= 1;
                    j -= 1;
                }
                H_E => state = State::E,
                H_F => state = State::F,
                _ => break,
            },
            State::E => {
                let extended = tb[tb_idx(i, j)] & E_EXT != 0;
                rev.push(CigarOp::Del, 1);
                j -= 1;
                if !extended {
                    state = State::H;
                }
                if j == 0 && state == State::E {
                    break;
                }
            }
            State::F => {
                let extended = tb[tb_idx(i, j)] & F_EXT != 0;
                rev.push(CigarOp::Ins, 1);
                i -= 1;
                if !extended {
                    state = State::H;
                }
                if i == 0 && state == State::F {
                    break;
                }
            }
        }
        if i == 0 && j == 0 {
            break;
        }
        if i == 0 && matches!(state, State::H) && tb[tb_idx(0, j)] & 3 == H_STOP {
            break;
        }
    }

    Alignment {
        score,
        cigar: rev.reversed(),
        query_start: i,
        query_end: n,
        target_start: j,
        target_end: end_j,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align;

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn matches_full_dp_on_fit() {
        let q = seq("ACGTACGTACGTTACG");
        let t = seq("GGACGTACGTTACGTTACGGG");
        let s = Scoring::short_read();
        let full = align(&q, &t, &s, AlignMode::Fit);
        let band = banded_align(&q, &t, &s, 8, AlignMode::Fit);
        assert_eq!(full.score, band.score);
        assert_eq!(full.cigar.query_len(), band.cigar.query_len());
    }

    #[test]
    fn matches_full_dp_on_global() {
        let q = seq("ACGTACGGGTACGTTACG");
        let t = seq("ACGTACGTACGTTACG");
        let s = Scoring::short_read();
        let full = align(&q, &t, &s, AlignMode::Global);
        let band = banded_align(&q, &t, &s, 8, AlignMode::Global);
        assert_eq!(full.score, band.score);
    }

    #[test]
    fn computes_fewer_cells() {
        let q = seq(&"ACGT".repeat(50));
        let t = seq(&"ACGT".repeat(60));
        let s = Scoring::short_read();
        let full = align(&q, &t, &s, AlignMode::Fit);
        let band = banded_align(&q, &t, &s, 5, AlignMode::Fit);
        assert!(
            band.cells < full.cells / 2,
            "band {} full {}",
            band.cells,
            full.cells
        );
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        // One scratch driven across differently-shaped problems (growing,
        // shrinking, global and fit) must reproduce the fresh-allocation
        // result bit for bit — this is the property that lets a mapping
        // session keep a single workspace alive across pairs.
        let s = Scoring::short_read();
        let mut scratch = AlignScratch::new();
        let cases = [
            ("ACGTACGTACGTTACG", "GGACGTACGTTACGTTACGGG", AlignMode::Fit),
            (
                "ACGGTTACGGTAGACCAACGGTTAC",
                "ACGGTTACGGTATTTGACCAACGGTTAC",
                AlignMode::Global,
            ),
            ("ACGT", "TACGTT", AlignMode::Fit),
            ("ACGTACGGGTACGTTACG", "ACGTACGTACGTTACG", AlignMode::Global),
        ];
        for (q, t, mode) in cases {
            let (q, t) = (seq(q), seq(t));
            let fresh = banded_align(&q, &t, &s, 8, mode);
            let reused = banded_align_with(&q, &t, &s, 8, mode, &mut scratch);
            assert_eq!(fresh.score, reused.score);
            assert_eq!(fresh.cigar, reused.cigar);
            assert_eq!(fresh.target_start, reused.target_start);
            assert_eq!(fresh.cells, reused.cells);
            let full_fresh = align(&q, &t, &s, mode);
            let full_reused = crate::align_with(&q, &t, &s, mode, &mut scratch);
            assert_eq!(full_fresh.score, full_reused.score);
            assert_eq!(full_fresh.cigar, full_reused.cigar);
        }
    }

    #[test]
    fn band_wide_enough_recovers_indel() {
        let q = seq("ACGGTTACGGTAGACCAACGGTTAC");
        // insert 3 bases in target mid-way
        let t = seq("ACGGTTACGGTATTTGACCAACGGTTAC");
        let s = Scoring::short_read();
        let full = align(&q, &t, &s, AlignMode::Global);
        let band = banded_align(&q, &t, &s, 6, AlignMode::Global);
        assert_eq!(full.score, band.score);
        assert_eq!(full.cigar.to_string(), band.cigar.to_string());
    }
}
