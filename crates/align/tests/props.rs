//! Property-based tests for the DP aligners.

use gx_align::{align, banded_align, AlignMode, Scoring};
use gx_genome::{CigarOp, DnaSeq};
use proptest::prelude::*;

fn arb_dna(min: usize, max: usize) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, min..=max).prop_map(|codes| DnaSeq::from_codes(&codes))
}

/// Recomputes an alignment score from its CIGAR (each gap run pays one
/// open + per-base extension).
fn score_from_cigar(cigar: &gx_genome::Cigar, s: &Scoring) -> i32 {
    cigar
        .runs()
        .iter()
        .map(|&(n, op)| match op {
            CigarOp::Equal => s.match_score * n as i32,
            CigarOp::Diff => -s.mismatch * n as i32,
            CigarOp::Ins | CigarOp::Del => -s.gap_cost(n),
            _ => 0,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn global_score_matches_cigar(q in arb_dna(4, 60), t in arb_dna(4, 60)) {
        let s = Scoring::short_read();
        let a = align(&q, &t, &s, AlignMode::Global);
        prop_assert_eq!(a.score, score_from_cigar(&a.cigar, &s));
        prop_assert_eq!(a.cigar.query_len() as usize, q.len());
        prop_assert_eq!(a.cigar.ref_len() as usize, t.len());
    }

    #[test]
    fn fit_consumes_whole_query(q in arb_dna(4, 50), t in arb_dna(20, 120)) {
        let s = Scoring::short_read();
        let a = align(&q, &t, &s, AlignMode::Fit);
        prop_assert_eq!(a.cigar.query_len() as usize, q.len());
        prop_assert_eq!(a.target_end - a.target_start, a.cigar.ref_len() as usize);
        prop_assert_eq!(a.score, score_from_cigar(&a.cigar, &s));
    }

    #[test]
    fn fit_score_bounded_by_perfect(q in arb_dna(4, 60), t in arb_dna(4, 120)) {
        let s = Scoring::short_read();
        let a = align(&q, &t, &s, AlignMode::Fit);
        prop_assert!(a.score <= s.perfect(q.len()));
    }

    #[test]
    fn local_score_non_negative_and_geq_fit(q in arb_dna(4, 40), t in arb_dna(4, 80)) {
        let s = Scoring::short_read();
        let local = align(&q, &t, &s, AlignMode::Local);
        let fit = align(&q, &t, &s, AlignMode::Fit);
        prop_assert!(local.score >= 0);
        prop_assert!(local.score >= fit.score, "local {} < fit {}", local.score, fit.score);
    }

    #[test]
    fn identity_alignment_is_perfect(q in arb_dna(4, 80)) {
        let s = Scoring::short_read();
        let a = align(&q, &q, &s, AlignMode::Global);
        prop_assert_eq!(a.score, s.perfect(q.len()));
        prop_assert_eq!(a.cigar.runs().len(), 1);
    }

    #[test]
    fn wide_band_equals_full_dp(q in arb_dna(8, 50), t in arb_dna(8, 60)) {
        let s = Scoring::short_read();
        let full = align(&q, &t, &s, AlignMode::Fit);
        let band = banded_align(&q, &t, &s, q.len().max(t.len()), AlignMode::Fit);
        prop_assert_eq!(full.score, band.score);
    }

    #[test]
    fn banded_never_beats_full(q in arb_dna(8, 50), t in arb_dna(8, 70)) {
        let s = Scoring::short_read();
        let full = align(&q, &t, &s, AlignMode::Fit);
        let band = banded_align(&q, &t, &s, 4, AlignMode::Fit);
        prop_assert!(band.score <= full.score);
    }

    #[test]
    fn alignment_is_symmetric_under_revcomp(q in arb_dna(8, 40), t in arb_dna(8, 80)) {
        // Aligning rc(q) against rc(t) must give the same score as q vs t.
        let s = Scoring::short_read();
        let fwd = align(&q, &t, &s, AlignMode::Fit);
        let rev = align(&q.revcomp(), &t.revcomp(), &s, AlignMode::Fit);
        prop_assert_eq!(fwd.score, rev.score);
    }
}

mod chain_props {
    use super::*;
    use gx_align::chain::{chain_anchors, Anchor, ChainParams};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn chains_are_colinear(
            anchors in prop::collection::vec((0u32..500, 0u64..5_000), 1..80)
        ) {
            let mut anchors: Vec<Anchor> = anchors
                .into_iter()
                .map(|(read_pos, ref_pos)| Anchor { read_pos, ref_pos })
                .collect();
            let res = chain_anchors(&mut anchors, &ChainParams::default());
            for chain in &res.chains {
                for w in chain.anchors.windows(2) {
                    let a = anchors[w[0]];
                    let b = anchors[w[1]];
                    prop_assert!(b.read_pos > a.read_pos, "read positions not increasing");
                    prop_assert!(b.ref_pos > a.ref_pos, "ref positions not increasing");
                }
            }
        }

        #[test]
        fn anchors_used_at_most_once(
            anchors in prop::collection::vec((0u32..300, 0u64..3_000), 1..60)
        ) {
            let mut anchors: Vec<Anchor> = anchors
                .into_iter()
                .map(|(read_pos, ref_pos)| Anchor { read_pos, ref_pos })
                .collect();
            let res = chain_anchors(&mut anchors, &ChainParams::default());
            let mut seen = std::collections::HashSet::new();
            for chain in &res.chains {
                for &i in &chain.anchors {
                    prop_assert!(seen.insert(i), "anchor {i} in two chains");
                }
            }
        }
    }
}
