use crate::{Cigar, DnaSeq};

/// SAM-style flag bits for [`SamRecord::flags`].
pub mod flags {
    /// Template has multiple segments (paired).
    pub const PAIRED: u16 = 0x1;
    /// Each segment properly aligned according to the aligner.
    pub const PROPER_PAIR: u16 = 0x2;
    /// Segment unmapped.
    pub const UNMAPPED: u16 = 0x4;
    /// Next segment unmapped.
    pub const MATE_UNMAPPED: u16 = 0x8;
    /// Sequence reverse-complemented on the reference.
    pub const REVERSE: u16 = 0x10;
    /// Mate reverse-complemented.
    pub const MATE_REVERSE: u16 = 0x20;
    /// First segment in the template (read 1).
    pub const FIRST_IN_PAIR: u16 = 0x40;
    /// Last segment in the template (read 2).
    pub const SECOND_IN_PAIR: u16 = 0x80;
    /// Secondary alignment.
    pub const SECONDARY: u16 = 0x100;
}

/// A minimal SAM-like alignment record.
///
/// Chromosomes are referenced by index into the genome that produced the
/// alignment (names live in [`ReferenceGenome`](crate::ReferenceGenome)),
/// which keeps pileup construction allocation-free.
///
/// ```
/// use gx_genome::{Cigar, DnaSeq, SamRecord, flags};
///
/// # fn main() -> Result<(), gx_genome::GenomeError> {
/// let rec = SamRecord {
///     qname: "pair0/1".to_string(),
///     flags: flags::PAIRED | flags::FIRST_IN_PAIR,
///     chrom: 0,
///     pos: 1234,
///     mapq: 60,
///     cigar: Cigar::parse("150M")?,
///     seq: DnaSeq::from_ascii(b"ACGT")?,
///     score: 300,
/// };
/// assert!(rec.is_mapped());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SamRecord {
    /// Query (read) name.
    pub qname: String,
    /// Bitwise OR of [`flags`] values.
    pub flags: u16,
    /// Chromosome index (meaningless when unmapped).
    pub chrom: u32,
    /// 0-based leftmost mapping position.
    pub pos: u64,
    /// Mapping quality (0–60).
    pub mapq: u8,
    /// Alignment description. Empty when unmapped.
    pub cigar: Cigar,
    /// The read bases as aligned (already reverse-complemented when the
    /// `REVERSE` flag is set, i.e. in reference orientation).
    pub seq: DnaSeq,
    /// Alignment score (mapper-specific; minimap2 `AS` tag equivalent).
    pub score: i32,
}

impl SamRecord {
    /// Creates an unmapped record for a read.
    pub fn unmapped(qname: impl Into<String>, flags_in: u16, seq: DnaSeq) -> SamRecord {
        SamRecord {
            qname: qname.into(),
            flags: flags_in | flags::UNMAPPED,
            chrom: 0,
            pos: 0,
            mapq: 0,
            cigar: Cigar::new(),
            seq,
            score: 0,
        }
    }

    /// Whether the record represents a mapped read.
    pub fn is_mapped(&self) -> bool {
        self.flags & flags::UNMAPPED == 0
    }

    /// Whether the read aligned to the reverse strand.
    pub fn is_reverse(&self) -> bool {
        self.flags & flags::REVERSE != 0
    }

    /// End of the alignment on the reference (exclusive).
    pub fn ref_end(&self) -> u64 {
        self.pos + self.cigar.ref_len()
    }

    /// Renders a SAM text line (subset of columns; mate fields are left at
    /// their null values).
    pub fn to_sam_line(&self, chrom_name: &str) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t*\t0\t0\t{}\t*\tAS:i:{}",
            self.qname,
            self.flags,
            if self.is_mapped() { chrom_name } else { "*" },
            if self.is_mapped() { self.pos + 1 } else { 0 },
            self.mapq,
            self.cigar,
            self.seq,
            self.score,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_flags() {
        let r = SamRecord::unmapped("q", flags::PAIRED, DnaSeq::new());
        assert!(!r.is_mapped());
        assert!(r.flags & flags::PAIRED != 0);
    }

    #[test]
    fn ref_end_uses_cigar() {
        let r = SamRecord {
            qname: "q".into(),
            flags: 0,
            chrom: 0,
            pos: 100,
            mapq: 60,
            cigar: Cigar::parse("10M2D5M").unwrap(),
            seq: DnaSeq::new(),
            score: 0,
        };
        assert_eq!(r.ref_end(), 117);
    }

    #[test]
    fn sam_line_one_based() {
        let r = SamRecord {
            qname: "q".into(),
            flags: 0,
            chrom: 0,
            pos: 0,
            mapq: 60,
            cigar: Cigar::parse("4M").unwrap(),
            seq: DnaSeq::from_ascii(b"ACGT").unwrap(),
            score: 8,
        };
        let line = r.to_sam_line("chr1");
        assert!(line.contains("\tchr1\t1\t"), "line: {line}");
        assert!(line.ends_with("AS:i:8"));
    }
}
