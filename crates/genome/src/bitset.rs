/// A fixed-size bit set used for ambiguity (N) masks and visited-position
/// tracking.
///
/// ```
/// use gx_genome::Bitset;
/// let mut bs = Bitset::new(100);
/// bs.set(42);
/// assert!(bs.get(42));
/// assert!(!bs.get(41));
/// assert_eq!(bs.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Creates a set of `len` bits, all clear.
    pub fn new(len: usize) -> Bitset {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Whether any bit in `[start, end)` is set. Used to test whether a seed
    /// window overlaps an ambiguous (N) region.
    pub fn any_in_range(&self, start: usize, end: usize) -> bool {
        assert!(start <= end && end <= self.len, "range out of bounds");
        // Word-at-a-time scan: trim the first and last partial words.
        let (mut w0, w1) = (start / 64, end.div_ceil(64));
        if w0 == w1 {
            return false;
        }
        let first_mask = !0u64 << (start % 64);
        let last_mask = if end.is_multiple_of(64) {
            !0u64
        } else {
            (1u64 << (end % 64)) - 1
        };
        if w1 - w0 == 1 {
            return self.words[w0] & first_mask & last_mask != 0;
        }
        if self.words[w0] & first_mask != 0 {
            return true;
        }
        w0 += 1;
        for w in w0..w1 - 1 {
            if self.words[w] != 0 {
                return true;
            }
        }
        self.words[w1 - 1] & last_mask != 0
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bs = Bitset::new(130);
        bs.set(0);
        bs.set(63);
        bs.set(64);
        bs.set(129);
        assert!(bs.get(0) && bs.get(63) && bs.get(64) && bs.get(129));
        assert!(!bs.get(1) && !bs.get(65));
        bs.clear(64);
        assert!(!bs.get(64));
        assert_eq!(bs.count_ones(), 3);
    }

    #[test]
    fn any_in_range_matches_naive() {
        let mut bs = Bitset::new(300);
        for i in [5usize, 70, 130, 131, 250] {
            bs.set(i);
        }
        let naive = |s: usize, e: usize| (s..e).any(|i| bs.get(i));
        for s in (0..300).step_by(7) {
            for e in (s..=300).step_by(11) {
                assert_eq!(bs.any_in_range(s, e), naive(s, e), "range {s}..{e}");
            }
        }
    }

    #[test]
    fn empty_range_is_false() {
        let mut bs = Bitset::new(64);
        bs.set(10);
        assert!(!bs.any_in_range(10, 10));
    }
}
