use crate::{Bitset, DnaSeq, GenomeError, GlobalPos};

/// A named chromosome: a packed sequence plus an optional ambiguity mask
/// marking positions that were `N` in the source FASTA.
#[derive(Clone, Debug)]
pub struct Chromosome {
    name: String,
    seq: DnaSeq,
    n_mask: Option<Bitset>,
}

impl Chromosome {
    /// Creates a chromosome without ambiguous positions.
    pub fn new(name: impl Into<String>, seq: DnaSeq) -> Chromosome {
        Chromosome {
            name: name.into(),
            seq,
            n_mask: None,
        }
    }

    /// Creates a chromosome with an ambiguity mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the sequence length.
    pub fn with_n_mask(name: impl Into<String>, seq: DnaSeq, n_mask: Bitset) -> Chromosome {
        assert_eq!(
            n_mask.len(),
            seq.len(),
            "N mask length must equal sequence length"
        );
        Chromosome {
            name: name.into(),
            seq,
            n_mask: Some(n_mask),
        }
    }

    /// Chromosome name (FASTA header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The packed sequence.
    pub fn seq(&self) -> &DnaSeq {
        &self.seq
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the chromosome is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Whether any position in `[start, end)` was ambiguous (`N`) in the
    /// source. Seed extraction skips such windows, as GenPair does.
    pub fn has_n_in(&self, start: usize, end: usize) -> bool {
        match &self.n_mask {
            Some(mask) => mask.any_in_range(start, end),
            None => false,
        }
    }
}

/// A reference location: chromosome index plus 0-based position.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Locus {
    /// Index into [`ReferenceGenome::chromosomes`].
    pub chrom: u32,
    /// 0-based offset within the chromosome.
    pub pos: u64,
}

impl std::fmt::Display for Locus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chr{}:{}", self.chrom, self.pos)
    }
}

/// A multi-chromosome reference genome with a flat global coordinate space.
///
/// The SeedMap location table stores 32-bit *global positions*: offsets into
/// the concatenation of all chromosomes. [`ReferenceGenome::locate`] maps a
/// global position back to a [`Locus`], and [`ReferenceGenome::global_pos`]
/// goes the other way.
///
/// ```
/// use gx_genome::{Chromosome, DnaSeq, ReferenceGenome};
///
/// # fn main() -> Result<(), gx_genome::GenomeError> {
/// let genome = ReferenceGenome::from_chromosomes(vec![
///     Chromosome::new("chr1", DnaSeq::from_ascii(b"ACGTACGT")?),
///     Chromosome::new("chr2", DnaSeq::from_ascii(b"TTTT")?),
/// ]);
/// assert_eq!(genome.total_len(), 12);
/// let locus = genome.locate(9);
/// assert_eq!((locus.chrom, locus.pos), (1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReferenceGenome {
    chroms: Vec<Chromosome>,
    /// Global start offset of each chromosome; last element = total length.
    starts: Vec<u64>,
}

impl ReferenceGenome {
    /// Builds a genome from chromosomes.
    ///
    /// # Panics
    ///
    /// Panics if the total length exceeds `u32::MAX` (the SeedMap location
    /// table stores 32-bit global positions).
    pub fn from_chromosomes(chroms: Vec<Chromosome>) -> ReferenceGenome {
        let mut starts = Vec::with_capacity(chroms.len() + 1);
        let mut acc = 0u64;
        for c in &chroms {
            starts.push(acc);
            acc += c.len() as u64;
        }
        starts.push(acc);
        assert!(
            acc <= u32::MAX as u64,
            "genome too large for 32-bit global positions: {acc}"
        );
        ReferenceGenome { chroms, starts }
    }

    /// The chromosomes, in index order.
    pub fn chromosomes(&self) -> &[Chromosome] {
        &self.chroms
    }

    /// Chromosome by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn chromosome(&self, idx: u32) -> &Chromosome {
        &self.chroms[idx as usize]
    }

    /// Number of chromosomes.
    pub fn num_chromosomes(&self) -> usize {
        self.chroms.len()
    }

    /// Total length across chromosomes.
    pub fn total_len(&self) -> u64 {
        *self.starts.last().expect("starts is never empty")
    }

    /// Global start offset of chromosome `idx`.
    pub fn chrom_start(&self, idx: u32) -> u64 {
        self.starts[idx as usize]
    }

    /// Converts a locus to a global position.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::OutOfBounds`] if the locus lies outside the
    /// genome.
    pub fn global_pos(&self, locus: Locus) -> Result<GlobalPos, GenomeError> {
        let c = self
            .chroms
            .get(locus.chrom as usize)
            .ok_or(GenomeError::OutOfBounds {
                pos: locus.chrom as u64,
                len: self.chroms.len() as u64,
            })?;
        if locus.pos >= c.len() as u64 {
            return Err(GenomeError::OutOfBounds {
                pos: locus.pos,
                len: c.len() as u64,
            });
        }
        Ok((self.starts[locus.chrom as usize] + locus.pos) as GlobalPos)
    }

    /// Converts a global position back into a locus.
    ///
    /// # Panics
    ///
    /// Panics if `gpos` is past the end of the genome.
    pub fn locate(&self, gpos: GlobalPos) -> Locus {
        let g = gpos as u64;
        assert!(g < self.total_len(), "global position {g} out of bounds");
        // starts is sorted; find the last chromosome starting at or before g.
        let idx = match self.starts.binary_search(&g) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        // Guard against hitting the sentinel (total length) for g == start of
        // an empty trailing chromosome.
        let idx = idx.min(self.chroms.len() - 1);
        Locus {
            chrom: idx as u32,
            pos: g - self.starts[idx],
        }
    }

    /// Extracts `[start, start+len)` in global coordinates as a sequence.
    /// The window must not cross a chromosome boundary.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::OutOfBounds`] if the window crosses a boundary
    /// or exceeds the genome.
    pub fn global_window(&self, start: GlobalPos, len: usize) -> Result<DnaSeq, GenomeError> {
        if (start as u64) + (len as u64) > self.total_len() {
            return Err(GenomeError::OutOfBounds {
                pos: start as u64 + len as u64,
                len: self.total_len(),
            });
        }
        let locus = self.locate(start);
        let chrom = &self.chroms[locus.chrom as usize];
        let p = locus.pos as usize;
        if p + len > chrom.len() {
            return Err(GenomeError::OutOfBounds {
                pos: (p + len) as u64,
                len: chrom.len() as u64,
            });
        }
        Ok(chrom.seq().subseq(p..p + len))
    }

    /// A window clamped to the chromosome: like [`Self::global_window`] but
    /// truncates at chromosome edges instead of failing, returning the actual
    /// start used. Useful for extracting reference context around a candidate
    /// mapping with margins.
    pub fn clamped_window(&self, chrom: u32, start: i64, len: usize) -> (u64, DnaSeq) {
        let mut out = DnaSeq::new();
        let s = self.clamped_window_into(chrom, start, len, &mut out);
        (s, out)
    }

    /// [`Self::clamped_window`] into a caller-owned buffer (cleared first):
    /// the allocation-free variant the mapper's scratch arena uses when
    /// extracting one reference window per candidate.
    pub fn clamped_window_into(&self, chrom: u32, start: i64, len: usize, out: &mut DnaSeq) -> u64 {
        let c = &self.chroms[chrom as usize];
        let s = start.max(0) as u64;
        let s = s.min(c.len() as u64);
        let e = (s + len as u64).min(c.len() as u64);
        c.seq().copy_range_into(s as usize..e as usize, out);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> ReferenceGenome {
        ReferenceGenome::from_chromosomes(vec![
            Chromosome::new("chr1", DnaSeq::from_ascii(b"ACGTACGTAC").unwrap()),
            Chromosome::new("chr2", DnaSeq::from_ascii(b"GGGG").unwrap()),
            Chromosome::new("chr3", DnaSeq::from_ascii(b"TTTTTT").unwrap()),
        ])
    }

    #[test]
    fn global_roundtrip() {
        let g = genome();
        for chrom in 0..3u32 {
            for pos in 0..g.chromosome(chrom).len() as u64 {
                let gp = g.global_pos(Locus { chrom, pos }).unwrap();
                assert_eq!(g.locate(gp), Locus { chrom, pos });
            }
        }
    }

    #[test]
    fn total_len_sums() {
        assert_eq!(genome().total_len(), 20);
    }

    #[test]
    fn out_of_bounds_locus() {
        let g = genome();
        assert!(g.global_pos(Locus { chrom: 0, pos: 10 }).is_err());
        assert!(g.global_pos(Locus { chrom: 9, pos: 0 }).is_err());
    }

    #[test]
    fn window_within_chromosome() {
        let g = genome();
        assert_eq!(g.global_window(10, 4).unwrap().to_string(), "GGGG");
    }

    #[test]
    fn window_crossing_boundary_fails() {
        let g = genome();
        assert!(g.global_window(8, 4).is_err());
    }

    #[test]
    fn clamped_window_truncates() {
        let g = genome();
        let (s, w) = g.clamped_window(1, -2, 10);
        assert_eq!(s, 0);
        assert_eq!(w.to_string(), "GGGG");
    }

    #[test]
    fn n_mask_queries() {
        let mut mask = Bitset::new(10);
        mask.set(4);
        let c = Chromosome::with_n_mask("c", DnaSeq::from_ascii(b"ACGTACGTAC").unwrap(), mask);
        assert!(c.has_n_in(0, 10));
        assert!(c.has_n_in(4, 5));
        assert!(!c.has_n_in(5, 10));
        assert!(!c.has_n_in(0, 4));
    }
}
