use crate::GenomeError;

/// A single CIGAR operation kind, following SAM semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CigarOp {
    /// Alignment match or mismatch (`M`): consumes query and reference.
    Match,
    /// Sequence match (`=`): consumes query and reference.
    Equal,
    /// Sequence mismatch (`X`): consumes query and reference.
    Diff,
    /// Insertion to the reference (`I`): consumes query only.
    Ins,
    /// Deletion from the reference (`D`): consumes reference only.
    Del,
    /// Soft clip (`S`): consumes query only.
    SoftClip,
}

impl CigarOp {
    /// SAM single-character code.
    pub fn to_char(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Equal => '=',
            CigarOp::Diff => 'X',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
            CigarOp::SoftClip => 'S',
        }
    }

    /// Parses a SAM op character.
    pub fn from_char(c: char) -> Option<CigarOp> {
        Some(match c {
            'M' => CigarOp::Match,
            '=' => CigarOp::Equal,
            'X' => CigarOp::Diff,
            'I' => CigarOp::Ins,
            'D' => CigarOp::Del,
            'S' => CigarOp::SoftClip,
            _ => return None,
        })
    }

    /// Whether the op advances through the query (read).
    pub fn consumes_query(self) -> bool {
        !matches!(self, CigarOp::Del)
    }

    /// Whether the op advances through the reference.
    pub fn consumes_ref(self) -> bool {
        matches!(
            self,
            CigarOp::Match | CigarOp::Equal | CigarOp::Diff | CigarOp::Del
        )
    }
}

/// A CIGAR string: run-length encoded alignment operations.
///
/// Adjacent pushes of the same op coalesce, so building a CIGAR column by
/// column during DP traceback yields the canonical compact form.
///
/// ```
/// use gx_genome::{Cigar, CigarOp};
///
/// let mut c = Cigar::new();
/// c.push(CigarOp::Match, 50);
/// c.push(CigarOp::Match, 10);
/// c.push(CigarOp::Ins, 2);
/// c.push(CigarOp::Match, 90);
/// assert_eq!(c.to_string(), "60M2I90M");
/// assert_eq!(c.query_len(), 152);
/// assert_eq!(c.ref_len(), 150);
/// ```
#[derive(Clone)]
pub struct Cigar {
    /// Runs live inline until they outgrow the fixed buffer, then move to
    /// `spill` for good (runs only ever grow). Steady-state mapping emits
    /// short `=`/`X`/indel CIGARs, so the mapper hot path never touches the
    /// allocator when building, cloning or dropping one.
    inline: [(u32, CigarOp); Cigar::INLINE_RUNS],
    inline_len: u8,
    spill: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Runs held without a heap allocation. A read with up to three
    /// mismatches (`=X=X=X=`) or one indel still fits inline.
    const INLINE_RUNS: usize = 8;

    /// Creates an empty CIGAR.
    pub fn new() -> Cigar {
        Cigar::default()
    }

    /// Builds a CIGAR from `(len, op)` runs, coalescing adjacent equal ops.
    pub fn from_runs<I: IntoIterator<Item = (u32, CigarOp)>>(runs: I) -> Cigar {
        let mut c = Cigar::new();
        for (n, op) in runs {
            c.push(op, n);
        }
        c
    }

    /// Parses a SAM CIGAR string such as `"60M2I90M"`.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidCigar`] on malformed input.
    pub fn parse(s: &str) -> Result<Cigar, GenomeError> {
        let mut c = Cigar::new();
        let mut num = 0u32;
        let mut have_num = false;
        for ch in s.chars() {
            if let Some(d) = ch.to_digit(10) {
                num = num
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(d))
                    .ok_or_else(|| GenomeError::InvalidCigar(s.to_string()))?;
                have_num = true;
            } else {
                let op = CigarOp::from_char(ch)
                    .ok_or_else(|| GenomeError::InvalidCigar(s.to_string()))?;
                if !have_num || num == 0 {
                    return Err(GenomeError::InvalidCigar(s.to_string()));
                }
                c.push(op, num);
                num = 0;
                have_num = false;
            }
        }
        if have_num {
            return Err(GenomeError::InvalidCigar(s.to_string()));
        }
        Ok(c)
    }

    /// Appends `n` copies of `op`, coalescing with the previous run when the
    /// ops match. Pushing `n == 0` is a no-op.
    pub fn push(&mut self, op: CigarOp, n: u32) {
        if n == 0 {
            return;
        }
        if !self.spill.is_empty() {
            if let Some(last) = self.spill.last_mut() {
                if last.1 == op {
                    last.0 += n;
                    return;
                }
            }
            self.spill.push((n, op));
            return;
        }
        let len = self.inline_len as usize;
        if len > 0 && self.inline[len - 1].1 == op {
            self.inline[len - 1].0 += n;
        } else if len < Cigar::INLINE_RUNS {
            self.inline[len] = (n, op);
            self.inline_len += 1;
        } else {
            self.spill.reserve(Cigar::INLINE_RUNS + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push((n, op));
        }
    }

    /// The `(len, op)` runs.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        if self.spill.is_empty() {
            &self.inline[..self.inline_len as usize]
        } else {
            &self.spill
        }
    }

    /// Whether no operations are recorded.
    pub fn is_empty(&self) -> bool {
        self.runs().is_empty()
    }

    /// Number of query (read) bases consumed.
    pub fn query_len(&self) -> u64 {
        self.runs()
            .iter()
            .filter(|(_, op)| op.consumes_query())
            .map(|&(n, _)| n as u64)
            .sum()
    }

    /// Number of reference bases consumed.
    pub fn ref_len(&self) -> u64 {
        self.runs()
            .iter()
            .filter(|(_, op)| op.consumes_ref())
            .map(|&(n, _)| n as u64)
            .sum()
    }

    /// Total inserted + deleted bases (gap bases).
    pub fn gap_bases(&self) -> u64 {
        self.runs()
            .iter()
            .filter(|(_, op)| matches!(op, CigarOp::Ins | CigarOp::Del))
            .map(|&(n, _)| n as u64)
            .sum()
    }

    /// Number of mismatch bases, if the CIGAR distinguishes `=`/`X`.
    /// `M` runs are counted as matches, so callers that need exact mismatch
    /// counts should emit `=`/`X` CIGARs.
    pub fn mismatch_bases(&self) -> u64 {
        self.runs()
            .iter()
            .filter(|(_, op)| matches!(op, CigarOp::Diff))
            .map(|&(n, _)| n as u64)
            .sum()
    }

    /// Collapses `=`/`X` runs into `M` runs (SAM's classic form).
    pub fn to_m_form(&self) -> Cigar {
        let mut out = Cigar::new();
        for &(n, op) in self.runs() {
            let op = match op {
                CigarOp::Equal | CigarOp::Diff => CigarOp::Match,
                other => other,
            };
            out.push(op, n);
        }
        out
    }

    /// Reverses the run order (for alignments built back-to-front).
    pub fn reversed(&self) -> Cigar {
        let mut out = Cigar::new();
        for &(n, op) in self.runs().iter().rev() {
            out.push(op, n);
        }
        out
    }
}

impl Default for Cigar {
    fn default() -> Cigar {
        Cigar {
            inline: [(0, CigarOp::Match); Cigar::INLINE_RUNS],
            inline_len: 0,
            spill: Vec::new(),
        }
    }
}

impl PartialEq for Cigar {
    fn eq(&self, other: &Cigar) -> bool {
        self.runs() == other.runs()
    }
}

impl Eq for Cigar {}

impl std::hash::Hash for Cigar {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.runs().hash(state);
    }
}

impl std::fmt::Debug for Cigar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cigar(\"{self}\")")
    }
}

impl std::fmt::Display for Cigar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let runs = self.runs();
        if runs.is_empty() {
            return write!(f, "*");
        }
        for &(n, op) in runs {
            write!(f, "{n}{}", op.to_char())?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Cigar {
    type Err = GenomeError;

    fn from_str(s: &str) -> Result<Cigar, GenomeError> {
        Cigar::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let c = Cigar::parse("10M2I3D1X50=5S").unwrap();
        assert_eq!(c.to_string(), "10M2I3D1X50=5S");
    }

    #[test]
    fn push_coalesces() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 5);
        c.push(CigarOp::Match, 5);
        c.push(CigarOp::Ins, 0); // no-op
        c.push(CigarOp::Ins, 1);
        assert_eq!(c.to_string(), "10M1I");
        assert_eq!(c.runs().len(), 2);
    }

    #[test]
    fn lengths() {
        let c = Cigar::parse("10M2I3D5M").unwrap();
        assert_eq!(c.query_len(), 17);
        assert_eq!(c.ref_len(), 18);
        assert_eq!(c.gap_bases(), 5);
    }

    #[test]
    fn soft_clip_consumes_query_only() {
        let c = Cigar::parse("5S10M").unwrap();
        assert_eq!(c.query_len(), 15);
        assert_eq!(c.ref_len(), 10);
    }

    #[test]
    fn m_form_collapse() {
        let c = Cigar::parse("5=1X4=2I5=").unwrap();
        assert_eq!(c.to_m_form().to_string(), "10M2I5M");
        assert_eq!(c.mismatch_bases(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Cigar::parse("M").is_err());
        assert!(Cigar::parse("10").is_err());
        assert!(Cigar::parse("0M").is_err());
        assert!(Cigar::parse("10Q").is_err());
        assert!(Cigar::parse("99999999999M").is_err());
    }

    #[test]
    fn empty_displays_star() {
        assert_eq!(Cigar::new().to_string(), "*");
    }

    #[test]
    fn spill_past_inline_capacity_preserves_runs() {
        // 2 * INLINE_RUNS + 1 alternating runs forces the heap spill; the
        // observable run list must be identical to a reference built the
        // same way, and equality/hashing must not care which storage a
        // cigar's runs live in.
        let mut big = Cigar::new();
        let mut expect = Vec::new();
        for i in 0..(2 * 8 + 1) {
            let op = if i % 2 == 0 {
                CigarOp::Equal
            } else {
                CigarOp::Diff
            };
            big.push(op, i + 1);
            expect.push((i + 1, op));
        }
        assert_eq!(big.runs(), expect.as_slice());
        assert_eq!(
            big.query_len(),
            expect.iter().map(|&(n, _)| n as u64).sum::<u64>()
        );
        let reparsed = Cigar::parse(&big.to_string()).unwrap();
        assert_eq!(reparsed, big);
        assert_eq!(big.reversed().reversed(), big);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |c: &Cigar| {
            let mut s = DefaultHasher::new();
            c.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&reparsed), h(&big));
    }
}
