//! Minimal FASTQ reading and writing for simulated reads.

use crate::{DnaSeq, GenomeError};
use std::io::{BufRead, Write};

/// A sequencing read: identifier, bases and per-base Phred+33 qualities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadRecord {
    /// Read identifier (without the leading `@`).
    pub id: String,
    /// Read bases.
    pub seq: DnaSeq,
    /// Phred+33 quality bytes, one per base.
    pub qual: Vec<u8>,
}

impl ReadRecord {
    /// Creates a record with a flat quality of `q` (Phred score).
    pub fn with_flat_quality(id: impl Into<String>, seq: DnaSeq, q: u8) -> ReadRecord {
        let qual = vec![q.saturating_add(33).min(b'~'); seq.len()];
        ReadRecord {
            id: id.into(),
            seq,
            qual,
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the read has zero bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A streaming FASTQ parser: an iterator of [`ReadRecord`]s that reads one
/// record at a time, so arbitrarily large files never need to fit in
/// memory. [`read_fastq`] is the collect-everything wrapper over this.
///
/// Ambiguous bases (`N`) are not representable in [`DnaSeq`]; they are
/// replaced with `A`, matching the common practice of mapping-oriented 2-bit
/// encodings.
///
/// After the first error the iterator is fused: it yields `None` forever
/// (a malformed stream has no trustworthy record boundary to resume from).
///
/// ```
/// use gx_genome::fastq::FastqReader;
///
/// let data = b"@r1\nACGT\n+\nIIII\n@r2\nTTAA\n+\nIIII\n";
/// let ids: Vec<String> = FastqReader::new(&data[..])
///     .map(|r| r.unwrap().id)
///     .collect();
/// assert_eq!(ids, ["r1", "r2"]);
/// ```
pub struct FastqReader<R: BufRead> {
    lines: std::io::Lines<R>,
    failed: bool,
}

impl<R: BufRead> FastqReader<R> {
    /// A streaming parser over `reader`.
    pub fn new(reader: R) -> FastqReader<R> {
        FastqReader {
            lines: reader.lines(),
            failed: false,
        }
    }

    fn parse_next(&mut self) -> Option<Result<ReadRecord, GenomeError>> {
        let header = loop {
            match self.lines.next()? {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => break line,
                Err(e) => return Some(Err(GenomeError::ParseFormat(format!("io error: {e}")))),
            }
        };
        let id = match header.strip_prefix('@') {
            Some(rest) => rest.split_whitespace().next().unwrap_or("").to_string(),
            None => {
                return Some(Err(GenomeError::ParseFormat(format!(
                    "expected @header, got {header}"
                ))))
            }
        };
        let next = |lines: &mut std::io::Lines<R>| -> Result<String, GenomeError> {
            lines
                .next()
                .ok_or_else(|| GenomeError::ParseFormat("truncated FASTQ record".into()))?
                .map_err(|e| GenomeError::ParseFormat(format!("io error: {e}")))
        };
        let record = (|| {
            let seq_line = next(&mut self.lines)?;
            let plus = next(&mut self.lines)?;
            if !plus.starts_with('+') {
                return Err(GenomeError::ParseFormat("missing + separator".into()));
            }
            let qual_line = next(&mut self.lines)?;
            if qual_line.len() != seq_line.len() {
                return Err(GenomeError::ParseFormat(
                    "quality length differs from sequence length".into(),
                ));
            }
            let mut seq = DnaSeq::with_capacity(seq_line.len());
            for &ch in seq_line.as_bytes() {
                match crate::Base::from_ascii(ch) {
                    Some(b) => seq.push(b),
                    None => seq.push(crate::Base::A),
                }
            }
            Ok(ReadRecord {
                id,
                seq,
                qual: qual_line.into_bytes(),
            })
        })();
        Some(record)
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = Result<ReadRecord, GenomeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let item = self.parse_next();
        if matches!(item, Some(Err(_))) {
            self.failed = true;
        }
        item
    }
}

/// Reads all records from a FASTQ stream into memory (a thin collect over
/// [`FastqReader`]).
///
/// # Errors
///
/// Returns [`GenomeError::ParseFormat`] on truncated or malformed records.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<ReadRecord>, GenomeError> {
    FastqReader::new(reader).collect()
}

/// Writes records as FASTQ.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fastq<W: Write>(records: &[ReadRecord], mut writer: W) -> std::io::Result<()> {
    for r in records {
        writeln!(writer, "@{}", r.id)?;
        writer.write_all(&r.seq.to_ascii())?;
        writer.write_all(b"\n+\n")?;
        writer.write_all(&r.qual)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            ReadRecord::with_flat_quality("r1", DnaSeq::from_ascii(b"ACGT").unwrap(), 30),
            ReadRecord::with_flat_quality("r2", DnaSeq::from_ascii(b"TTAA").unwrap(), 20),
        ];
        let mut buf = Vec::new();
        write_fastq(&records, &mut buf).unwrap();
        let back = read_fastq(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn rejects_truncated() {
        assert!(read_fastq(&b"@r1\nACGT\n+\n"[..]).is_err());
        assert!(read_fastq(&b"@r1\nACGT\n"[..]).is_err());
    }

    #[test]
    fn rejects_quality_mismatch() {
        assert!(read_fastq(&b"@r1\nACGT\n+\nII\n"[..]).is_err());
    }

    #[test]
    fn n_replaced_with_a() {
        let recs = read_fastq(&b"@r\nANGT\n+\nIIII\n"[..]).unwrap();
        assert_eq!(recs[0].seq.to_string(), "AAGT");
    }

    #[test]
    fn streaming_reader_yields_records_incrementally() {
        let data = b"@r1\nACGT\n+\nIIII\n\n@r2\nTTAA\n+\nIIII\n";
        let mut reader = FastqReader::new(&data[..]);
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.id, "r1");
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.id, "r2");
        assert!(reader.next().is_none());
    }

    #[test]
    fn streaming_reader_fuses_after_error() {
        let data = b"@r1\nACGT\n+\nII\n@r2\nTTAA\n+\nIIII\n";
        let mut reader = FastqReader::new(&data[..]);
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "reader must fuse after an error");
    }

    #[test]
    fn streaming_matches_collect_wrapper() {
        let data = b"@a\nACGT\n+\nIIII\n@b\nGGCC\n+\nIIII\n@c\nTTTT\n+\nIIII\n";
        let streamed: Vec<ReadRecord> = FastqReader::new(&data[..]).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, read_fastq(&data[..]).unwrap());
    }
}
