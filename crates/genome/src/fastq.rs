//! Minimal FASTQ reading and writing for simulated reads.

use crate::{Base, DnaSeq, GenomeError};
use bytes::BytesMut;
use std::io::{BufRead, Write};

/// A sequencing read: identifier, bases and per-base Phred+33 qualities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadRecord {
    /// Read identifier (without the leading `@`).
    pub id: String,
    /// Read bases.
    pub seq: DnaSeq,
    /// Phred+33 quality bytes, one per base.
    pub qual: Vec<u8>,
}

impl ReadRecord {
    /// Creates a record with a flat quality of `q` (Phred score).
    pub fn with_flat_quality(id: impl Into<String>, seq: DnaSeq, q: u8) -> ReadRecord {
        let qual = vec![q.saturating_add(33).min(b'~'); seq.len()];
        ReadRecord {
            id: id.into(),
            seq,
            qual,
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the read has zero bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A streaming FASTQ parser: an iterator of [`ReadRecord`]s that reads one
/// record at a time, so arbitrarily large files never need to fit in
/// memory. [`read_fastq`] is the collect-everything wrapper over this.
///
/// Parsing is zero-copy: lines are scanned directly in the `BufRead`'s
/// internal buffer and decoded in place (2-bit packing, quality copy)
/// without an intermediate per-line `String`. Only a line that straddles
/// the buffer boundary is stitched together in a reusable [`BytesMut`]
/// spill buffer. CRLF line endings are accepted (one trailing `\r` is
/// stripped, as with [`BufRead::lines`]).
///
/// Ambiguous bases (`N`) are not representable in [`DnaSeq`]; they are
/// replaced with `A`, matching the common practice of mapping-oriented 2-bit
/// encodings.
///
/// After the first error the iterator is fused: it yields `None` forever
/// (a malformed stream has no trustworthy record boundary to resume from).
///
/// ```
/// use gx_genome::fastq::FastqReader;
///
/// let data = b"@r1\nACGT\n+\nIIII\n@r2\nTTAA\n+\nIIII\n";
/// let ids: Vec<String> = FastqReader::new(&data[..])
///     .map(|r| r.unwrap().id)
///     .collect();
/// assert_eq!(ids, ["r1", "r2"]);
/// ```
pub struct FastqReader<R: BufRead> {
    reader: R,
    spill: BytesMut,
    failed: bool,
}

/// One trailing carriage return stripped, matching [`BufRead::lines`].
fn trim_cr(line: &[u8]) -> &[u8] {
    match line {
        [head @ .., b'\r'] => head,
        _ => line,
    }
}

/// Feeds the next line (without its terminator) to `f` and returns the
/// result, or `Ok(None)` at end of input. The line is borrowed straight
/// from the reader's buffer when it fits; otherwise it is assembled in
/// `spill` across refills.
fn next_line<R: BufRead, T>(
    reader: &mut R,
    spill: &mut BytesMut,
    f: impl FnOnce(&[u8]) -> T,
) -> Result<Option<T>, GenomeError> {
    let mut f = Some(f);
    let mut call = |line: &[u8]| (f.take().expect("one line per next_line call"))(trim_cr(line));
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) => return Err(GenomeError::ParseFormat(format!("io error: {e}"))),
        };
        if buf.is_empty() {
            if spill.is_empty() {
                return Ok(None);
            }
            let out = call(spill);
            spill.clear();
            return Ok(Some(out));
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let out = if spill.is_empty() {
                    call(&buf[..nl])
                } else {
                    spill.extend_from_slice(&buf[..nl]);
                    let out = call(spill);
                    spill.clear();
                    out
                };
                reader.consume(nl + 1);
                return Ok(Some(out));
            }
            None => {
                let n = buf.len();
                spill.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// Header-line classification (owned, so the borrow of the reader's buffer
/// can end before the next line is pulled).
enum Header {
    Blank,
    Id(String),
    Bad(String),
}

impl<R: BufRead> FastqReader<R> {
    /// A streaming parser over `reader`.
    pub fn new(reader: R) -> FastqReader<R> {
        FastqReader {
            reader,
            spill: BytesMut::new(),
            failed: false,
        }
    }

    fn parse_next(&mut self) -> Option<Result<ReadRecord, GenomeError>> {
        let id = loop {
            let header = next_line(&mut self.reader, &mut self.spill, |line| {
                if line.iter().all(|b| b.is_ascii_whitespace()) {
                    Header::Blank
                } else if let Some(rest) = line.strip_prefix(b"@") {
                    let rest = String::from_utf8_lossy(rest);
                    Header::Id(rest.split_whitespace().next().unwrap_or("").to_string())
                } else {
                    Header::Bad(String::from_utf8_lossy(line).into_owned())
                }
            });
            match header {
                Ok(None) => return None,
                Ok(Some(Header::Blank)) => continue,
                Ok(Some(Header::Id(id))) => break id,
                Ok(Some(Header::Bad(header))) => {
                    return Some(Err(GenomeError::ParseFormat(format!(
                        "expected @header, got {header}"
                    ))))
                }
                Err(e) => return Some(Err(e)),
            }
        };
        let record = (|| {
            let truncated = || GenomeError::ParseFormat("truncated FASTQ record".into());
            let seq = next_line(&mut self.reader, &mut self.spill, |line| {
                let mut seq = DnaSeq::with_capacity(line.len());
                for &ch in line {
                    seq.push(Base::from_ascii(ch).unwrap_or(Base::A));
                }
                seq
            })?
            .ok_or_else(truncated)?;
            let plus = next_line(&mut self.reader, &mut self.spill, |line| {
                line.first() == Some(&b'+')
            })?
            .ok_or_else(truncated)?;
            if !plus {
                return Err(GenomeError::ParseFormat("missing + separator".into()));
            }
            let qual = next_line(&mut self.reader, &mut self.spill, <[u8]>::to_vec)?
                .ok_or_else(truncated)?;
            if qual.len() != seq.len() {
                return Err(GenomeError::ParseFormat(
                    "quality length differs from sequence length".into(),
                ));
            }
            Ok(ReadRecord { id, seq, qual })
        })();
        Some(record)
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = Result<ReadRecord, GenomeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let item = self.parse_next();
        if matches!(item, Some(Err(_))) {
            self.failed = true;
        }
        item
    }
}

/// Reads all records from a FASTQ stream into memory (a thin collect over
/// [`FastqReader`]).
///
/// # Errors
///
/// Returns [`GenomeError::ParseFormat`] on truncated or malformed records.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<ReadRecord>, GenomeError> {
    FastqReader::new(reader).collect()
}

/// Writes records as FASTQ.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fastq<W: Write>(records: &[ReadRecord], mut writer: W) -> std::io::Result<()> {
    for r in records {
        writeln!(writer, "@{}", r.id)?;
        writer.write_all(&r.seq.to_ascii())?;
        writer.write_all(b"\n+\n")?;
        writer.write_all(&r.qual)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            ReadRecord::with_flat_quality("r1", DnaSeq::from_ascii(b"ACGT").unwrap(), 30),
            ReadRecord::with_flat_quality("r2", DnaSeq::from_ascii(b"TTAA").unwrap(), 20),
        ];
        let mut buf = Vec::new();
        write_fastq(&records, &mut buf).unwrap();
        let back = read_fastq(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn rejects_truncated() {
        assert!(read_fastq(&b"@r1\nACGT\n+\n"[..]).is_err());
        assert!(read_fastq(&b"@r1\nACGT\n"[..]).is_err());
    }

    #[test]
    fn rejects_quality_mismatch() {
        assert!(read_fastq(&b"@r1\nACGT\n+\nII\n"[..]).is_err());
    }

    #[test]
    fn n_replaced_with_a() {
        let recs = read_fastq(&b"@r\nANGT\n+\nIIII\n"[..]).unwrap();
        assert_eq!(recs[0].seq.to_string(), "AAGT");
    }

    #[test]
    fn streaming_reader_yields_records_incrementally() {
        let data = b"@r1\nACGT\n+\nIIII\n\n@r2\nTTAA\n+\nIIII\n";
        let mut reader = FastqReader::new(&data[..]);
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.id, "r1");
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.id, "r2");
        assert!(reader.next().is_none());
    }

    #[test]
    fn streaming_reader_fuses_after_error() {
        let data = b"@r1\nACGT\n+\nII\n@r2\nTTAA\n+\nIIII\n";
        let mut reader = FastqReader::new(&data[..]);
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "reader must fuse after an error");
    }

    #[test]
    fn streaming_matches_collect_wrapper() {
        let data = b"@a\nACGT\n+\nIIII\n@b\nGGCC\n+\nIIII\n@c\nTTTT\n+\nIIII\n";
        let streamed: Vec<ReadRecord> = FastqReader::new(&data[..]).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, read_fastq(&data[..]).unwrap());
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let crlf = b"@r1 extra\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nTTAA\r\n+\r\nII!I\r\n";
        let lf = b"@r1 extra\nACGT\n+\nIIII\n@r2\nTTAA\n+\nII!I\n";
        let got = read_fastq(&crlf[..]).unwrap();
        assert_eq!(got, read_fastq(&lf[..]).unwrap());
        assert_eq!(got[0].id, "r1");
        assert_eq!(got[0].qual, b"IIII");
        assert_eq!(got[1].seq.to_string(), "TTAA");
    }

    #[test]
    fn truncated_record_reports_each_missing_line() {
        for data in [
            &b"@r1\n"[..],
            &b"@r1\nACGT\n"[..],
            &b"@r1\nACGT\n+\n"[..],
            &b"@r1\nACGT\n+"[..],
        ] {
            let err = read_fastq(data).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("truncated FASTQ record") || msg.contains("quality length"),
                "unexpected error for {data:?}: {msg}"
            );
        }
    }

    #[test]
    fn missing_plus_separator_rejected() {
        let err = read_fastq(&b"@r1\nACGT\nIIII\nIIII\n"[..]).unwrap_err();
        assert!(err.to_string().contains("missing + separator"));
    }

    #[test]
    fn non_header_line_rejected() {
        let err = read_fastq(&b"xr1\nACGT\n+\nIIII\n"[..]).unwrap_err();
        assert!(err.to_string().contains("expected @header"));
    }

    #[test]
    fn lines_spanning_refill_boundaries_are_stitched() {
        // A 3-byte BufRead buffer forces every line through the spill path.
        let data = b"@read-with-a-long-name descr\nACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIII\n";
        let tiny = std::io::BufReader::with_capacity(3, &data[..]);
        let recs: Vec<ReadRecord> = FastqReader::new(tiny).map(|r| r.unwrap()).collect();
        assert_eq!(recs, read_fastq(&data[..]).unwrap());
        assert_eq!(recs[0].id, "read-with-a-long-name");
        assert_eq!(recs[0].seq.to_string(), "ACGTACGTACGTACGT");
    }

    #[test]
    fn final_record_without_trailing_newline() {
        let recs = read_fastq(&b"@r1\nACGT\n+\nIIII"[..]).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].qual, b"IIII");
    }

    #[test]
    fn id_is_first_whitespace_token() {
        let recs = read_fastq(&b"@  spaced id here\nAC\n+\nII\n"[..]).unwrap();
        assert_eq!(recs[0].id, "spaced");
    }
}
