//! Minimal FASTQ reading and writing for simulated reads.

use crate::{DnaSeq, GenomeError};
use std::io::{BufRead, Write};

/// A sequencing read: identifier, bases and per-base Phred+33 qualities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadRecord {
    /// Read identifier (without the leading `@`).
    pub id: String,
    /// Read bases.
    pub seq: DnaSeq,
    /// Phred+33 quality bytes, one per base.
    pub qual: Vec<u8>,
}

impl ReadRecord {
    /// Creates a record with a flat quality of `q` (Phred score).
    pub fn with_flat_quality(id: impl Into<String>, seq: DnaSeq, q: u8) -> ReadRecord {
        let qual = vec![q.saturating_add(33).min(b'~'); seq.len()];
        ReadRecord {
            id: id.into(),
            seq,
            qual,
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the read has zero bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Reads all records from a FASTQ stream.
///
/// Ambiguous bases (`N`) are not representable in [`DnaSeq`]; they are
/// replaced with `A`, matching the common practice of mapping-oriented 2-bit
/// encodings.
///
/// # Errors
///
/// Returns [`GenomeError::ParseFormat`] on truncated or malformed records.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<ReadRecord>, GenomeError> {
    let mut lines = reader.lines();
    let mut out = Vec::new();
    while let Some(header) = lines.next() {
        let header = header.map_err(|e| GenomeError::ParseFormat(format!("io error: {e}")))?;
        if header.trim().is_empty() {
            continue;
        }
        let id = header
            .strip_prefix('@')
            .ok_or_else(|| GenomeError::ParseFormat(format!("expected @header, got {header}")))?
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string();
        let next = |lines: &mut std::io::Lines<R>| -> Result<String, GenomeError> {
            lines
                .next()
                .ok_or_else(|| GenomeError::ParseFormat("truncated FASTQ record".into()))?
                .map_err(|e| GenomeError::ParseFormat(format!("io error: {e}")))
        };
        let seq_line = next(&mut lines)?;
        let plus = next(&mut lines)?;
        if !plus.starts_with('+') {
            return Err(GenomeError::ParseFormat("missing + separator".into()));
        }
        let qual_line = next(&mut lines)?;
        if qual_line.len() != seq_line.len() {
            return Err(GenomeError::ParseFormat(
                "quality length differs from sequence length".into(),
            ));
        }
        let mut seq = DnaSeq::with_capacity(seq_line.len());
        for &ch in seq_line.as_bytes() {
            match crate::Base::from_ascii(ch) {
                Some(b) => seq.push(b),
                None => seq.push(crate::Base::A),
            }
        }
        out.push(ReadRecord {
            id,
            seq,
            qual: qual_line.into_bytes(),
        });
    }
    Ok(out)
}

/// Writes records as FASTQ.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fastq<W: Write>(records: &[ReadRecord], mut writer: W) -> std::io::Result<()> {
    for r in records {
        writeln!(writer, "@{}", r.id)?;
        writer.write_all(&r.seq.to_ascii())?;
        writer.write_all(b"\n+\n")?;
        writer.write_all(&r.qual)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            ReadRecord::with_flat_quality("r1", DnaSeq::from_ascii(b"ACGT").unwrap(), 30),
            ReadRecord::with_flat_quality("r2", DnaSeq::from_ascii(b"TTAA").unwrap(), 20),
        ];
        let mut buf = Vec::new();
        write_fastq(&records, &mut buf).unwrap();
        let back = read_fastq(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn rejects_truncated() {
        assert!(read_fastq(&b"@r1\nACGT\n+\n"[..]).is_err());
        assert!(read_fastq(&b"@r1\nACGT\n"[..]).is_err());
    }

    #[test]
    fn rejects_quality_mismatch() {
        assert!(read_fastq(&b"@r1\nACGT\n+\nII\n"[..]).is_err());
    }

    #[test]
    fn n_replaced_with_a() {
        let recs = read_fastq(&b"@r\nANGT\n+\nIIII\n"[..]).unwrap();
        assert_eq!(recs[0].seq.to_string(), "AAGT");
    }
}
