use crate::{Base, GenomeError};

/// A DNA sequence packed two bits per base (32 bases per `u64` word).
///
/// `DnaSeq` is the workhorse sequence type of the workspace: reference
/// chromosomes, reads and seeds are all `DnaSeq`s. Random access is O(1) and
/// the packed words are exposed for bit-parallel algorithms (the light
/// aligner's Hamming masks operate directly on 2-bit codes).
///
/// ```
/// use gx_genome::{Base, DnaSeq};
///
/// # fn main() -> Result<(), gx_genome::GenomeError> {
/// let s = DnaSeq::from_ascii(b"ACGTT")?;
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.get(1), Base::C);
/// assert_eq!(s.revcomp().to_string(), "AACGT");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    words: Vec<u64>,
    len: usize,
}

impl DnaSeq {
    /// Creates an empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq::default()
    }

    /// Creates an empty sequence with room for `cap` bases.
    pub fn with_capacity(cap: usize) -> DnaSeq {
        DnaSeq {
            words: Vec::with_capacity(cap.div_ceil(32)),
            len: 0,
        }
    }

    /// Parses an ASCII byte string of `ACGTacgt`.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBase`] on any other byte (including `N`;
    /// ambiguous reference positions are tracked separately by
    /// [`Chromosome`](crate::Chromosome) masks).
    pub fn from_ascii(ascii: &[u8]) -> Result<DnaSeq, GenomeError> {
        let mut s = DnaSeq::with_capacity(ascii.len());
        for &ch in ascii {
            s.push(Base::from_ascii(ch).ok_or(GenomeError::InvalidBase(ch))?);
        }
        Ok(s)
    }

    /// Builds a sequence from raw 2-bit codes.
    pub fn from_codes(codes: &[u8]) -> DnaSeq {
        let mut s = DnaSeq::with_capacity(codes.len());
        for &c in codes {
            s.push(Base::from_code(c));
        }
        s
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Removes all bases, keeping the allocated capacity. This is what makes
    /// a `DnaSeq` reusable as scratch: `clear` + `extend`/`revcomp_into`
    /// cycles stop allocating once the buffer has seen its high-water mark.
    #[inline]
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Whether the sequence has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let (word, shift) = (self.len / 32, (self.len % 32) * 2);
        if shift == 0 {
            self.words.push(base.code() as u64);
        } else {
            self.words[word] |= (base.code() as u64) << shift;
        }
        self.len += 1;
    }

    /// The base at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    #[inline]
    pub fn get(&self, pos: usize) -> Base {
        assert!(
            pos < self.len,
            "index {pos} out of bounds (len {})",
            self.len
        );
        Base::from_code_unchecked(self.code_at(pos))
    }

    /// 2-bit code at `pos` (unchecked against `len` in release builds only
    /// through the underlying slice indexing; the word access itself is
    /// bounds-checked).
    #[inline]
    pub fn code_at(&self, pos: usize) -> u8 {
        ((self.words[pos / 32] >> ((pos % 32) * 2)) & 3) as u8
    }

    /// Overwrites the base at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    #[inline]
    pub fn set(&mut self, pos: usize, base: Base) {
        assert!(
            pos < self.len,
            "index {pos} out of bounds (len {})",
            self.len
        );
        let (word, shift) = (pos / 32, (pos % 32) * 2);
        self.words[word] = (self.words[word] & !(3u64 << shift)) | ((base.code() as u64) << shift);
    }

    /// Iterator over the bases.
    pub fn iter(&self) -> Iter<'_> {
        Iter { seq: self, pos: 0 }
    }

    /// Copies `range` into a new sequence.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn subseq(&self, range: std::ops::Range<usize>) -> DnaSeq {
        let mut out = DnaSeq::new();
        self.copy_range_into(range, &mut out);
        out
    }

    /// Copies `range` into `out` (cleared first), word-at-a-time. The
    /// allocation-free counterpart of [`DnaSeq::subseq`] for scratch reuse.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_range_into(&self, range: std::ops::Range<usize>, out: &mut DnaSeq) {
        assert!(range.end <= self.len, "subseq range out of bounds");
        out.clear();
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let n_words = n.div_ceil(32);
        let w0 = range.start / 32;
        let sh = (range.start % 32) * 2;
        out.words.reserve(n_words);
        if sh == 0 {
            out.words.extend_from_slice(&self.words[w0..w0 + n_words]);
        } else {
            for k in 0..n_words {
                let lo = self.words[w0 + k] >> sh;
                let hi = self.words.get(w0 + k + 1).copied().unwrap_or(0) << (64 - sh);
                out.words.push(lo | hi);
            }
        }
        out.len = n;
        let used = n % 32;
        if used != 0 {
            *out.words.last_mut().unwrap() &= (1u64 << (used * 2)) - 1;
        }
    }

    /// Appends all bases of `other`.
    pub fn extend_from_seq(&mut self, other: &DnaSeq) {
        for b in other.iter() {
            self.push(b);
        }
    }

    /// Reverse complement of the sequence.
    pub fn revcomp(&self) -> DnaSeq {
        let mut out = DnaSeq::new();
        self.revcomp_into(&mut out);
        out
    }

    /// Writes the reverse complement into `out` (cleared first), operating a
    /// packed word at a time: complement every 2-bit lane (`code ^ 3` is a
    /// bitwise NOT of the lane), reverse the lane order within each word,
    /// read the words back-to-front, then funnel-shift away the junk lanes
    /// that came from the final input word's unused high bits.
    pub fn revcomp_into(&self, out: &mut DnaSeq) {
        out.clear();
        out.len = self.len;
        if self.len == 0 {
            return;
        }
        let nw = self.words.len();
        out.words.reserve(nw);
        let sh = ((32 - self.len % 32) % 32) * 2;
        let rc = |j: usize| rev2_word(!self.words[nw - 1 - j]);
        let mut cur = rc(0);
        for j in 0..nw {
            let next = if j + 1 < nw { rc(j + 1) } else { 0 };
            let w = if sh == 0 {
                cur
            } else {
                (cur >> sh) | (next << (64 - sh))
            };
            out.words.push(w);
            cur = next;
        }
        let used = self.len % 32;
        if used != 0 {
            *out.words.last_mut().unwrap() &= (1u64 << (used * 2)) - 1;
        }
    }

    /// Packs bases `[pos, pos + k)` into the low `2k` bits of a `u64`
    /// (base at `pos` in the lowest bits). Used for minimizer k-mers.
    ///
    /// # Panics
    ///
    /// Panics if `k > 32` or the range is out of bounds.
    #[inline]
    pub fn kmer_u64(&self, pos: usize, k: usize) -> u64 {
        assert!(k <= 32, "k-mer too wide for u64");
        assert!(pos + k <= self.len, "k-mer range out of bounds");
        let mut v = 0u64;
        for i in 0..k {
            v |= (self.code_at(pos + i) as u64) << (2 * i);
        }
        v
    }

    /// ASCII bytes (`ACGT`) of the whole sequence.
    pub fn to_ascii(&self) -> Vec<u8> {
        self.iter().map(Base::to_ascii).collect()
    }

    /// Raw 2-bit codes of the whole sequence, one per byte. This is the byte
    /// stream the SeedMap hashes (xxh32 over codes).
    pub fn to_codes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.codes_into(0..self.len, &mut buf);
        buf
    }

    /// Copies the 2-bit codes of `range` into `buf` (resizing it). Each
    /// packed word is read once; the unpack loop is branch-free per base.
    pub fn codes_into(&self, range: std::ops::Range<usize>, buf: &mut Vec<u8>) {
        assert!(range.end <= self.len, "range out of bounds");
        buf.clear();
        let (mut pos, end) = (range.start, range.end);
        buf.reserve(end.saturating_sub(pos));
        while pos < end {
            let take = (32 - pos % 32).min(end - pos);
            let mut w = self.words[pos / 32] >> ((pos % 32) * 2);
            for _ in 0..take {
                buf.push((w & 3) as u8);
                w >>= 2;
            }
            pos += take;
        }
    }

    /// The packed 2-bit words backing the sequence (32 bases per word,
    /// little-endian within the word). The final word's unused high bits are
    /// zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Reverses the order of the 32 two-bit lanes in a word (byte swap, then
/// swap the four lane pairs within each byte).
#[inline]
fn rev2_word(w: u64) -> u64 {
    let w = w.swap_bytes();
    ((w & 0x0303_0303_0303_0303) << 6)
        | ((w & 0x0c0c_0c0c_0c0c_0c0c) << 2)
        | ((w & 0x3030_3030_3030_3030) >> 2)
        | ((w & 0xc0c0_c0c0_c0c0_c0c0) >> 6)
}

impl std::fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for DnaSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.len <= 64 {
            write!(f, "DnaSeq(\"{self}\")")
        } else {
            write!(f, "DnaSeq(len={}, \"{}…\")", self.len, self.subseq(0..64))
        }
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> DnaSeq {
        let mut s = DnaSeq::new();
        for b in iter {
            s.push(b);
        }
        s
    }
}

impl Extend<Base> for DnaSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = GenomeError;

    fn from_str(s: &str) -> Result<DnaSeq, GenomeError> {
        DnaSeq::from_ascii(s.as_bytes())
    }
}

/// Iterator over the bases of a [`DnaSeq`], produced by [`DnaSeq::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    seq: &'a DnaSeq,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = Base;

    fn next(&mut self) -> Option<Base> {
        if self.pos >= self.seq.len {
            return None;
        }
        let b = Base::from_code_unchecked(self.seq.code_at(self.pos));
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.seq.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a DnaSeq {
    type Item = Base;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_roundtrip() {
        let s = DnaSeq::from_ascii(b"ACGTACGTTGCA").unwrap();
        assert_eq!(s.to_ascii(), b"ACGTACGTTGCA");
        assert_eq!(s.to_string(), "ACGTACGTTGCA");
    }

    #[test]
    fn push_get_across_word_boundary() {
        let mut s = DnaSeq::new();
        for i in 0..100 {
            s.push(Base::from_code((i % 4) as u8));
        }
        for i in 0..100 {
            assert_eq!(s.get(i).code(), (i % 4) as u8);
        }
    }

    #[test]
    fn set_overwrites() {
        let mut s = DnaSeq::from_ascii(b"AAAA").unwrap();
        s.set(2, Base::T);
        assert_eq!(s.to_string(), "AATA");
        s.set(2, Base::C);
        assert_eq!(s.to_string(), "AACA");
    }

    #[test]
    fn revcomp_known() {
        let s = DnaSeq::from_ascii(b"AACGT").unwrap();
        assert_eq!(s.revcomp().to_string(), "ACGTT");
    }

    #[test]
    fn revcomp_involution() {
        let s = DnaSeq::from_ascii(b"ACGGGTTTACACGT").unwrap();
        assert_eq!(s.revcomp().revcomp(), s);
    }

    #[test]
    fn subseq_matches_slice() {
        let s = DnaSeq::from_ascii(b"ACGTACGTAC").unwrap();
        assert_eq!(s.subseq(2..7).to_string(), "GTACG");
        assert_eq!(s.subseq(0..0).len(), 0);
    }

    #[test]
    fn kmer_u64_packs_low_to_high() {
        let s = DnaSeq::from_ascii(b"ACGT").unwrap();
        // A=0, C=1, G=2, T=3 -> 0 | 1<<2 | 2<<4 | 3<<6
        assert_eq!(s.kmer_u64(0, 4), 0b11_10_01_00);
    }

    #[test]
    fn iterator_len() {
        let s = DnaSeq::from_ascii(b"ACGTACG").unwrap();
        assert_eq!(s.iter().len(), 7);
        assert_eq!(s.iter().count(), 7);
    }

    #[test]
    fn invalid_base_rejected() {
        assert!(DnaSeq::from_ascii(b"ACNGT").is_err());
    }

    #[test]
    fn from_iterator_collects() {
        let s: DnaSeq = [Base::A, Base::C, Base::G].into_iter().collect();
        assert_eq!(s.to_string(), "ACG");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let s = DnaSeq::from_ascii(b"ACGT").unwrap();
        let _ = s.get(4);
    }

    /// Deterministic pseudo-random sequence for the word-level equivalence
    /// tests (xorshift so no RNG dependency).
    fn arb_seq(len: usize, mut state: u64) -> DnaSeq {
        let mut s = DnaSeq::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            s.push(Base::from_code((state & 3) as u8));
        }
        s
    }

    #[test]
    fn revcomp_into_matches_per_base_reference() {
        for len in [0, 1, 5, 31, 32, 33, 63, 64, 65, 100, 150, 257] {
            let s = arb_seq(len, 0x9E37_79B9_7F4A_7C15 ^ len as u64);
            let reference: DnaSeq = (0..len)
                .rev()
                .map(|i| Base::from_code_unchecked(s.code_at(i) ^ 3))
                .collect();
            let mut out = DnaSeq::from_ascii(b"TTTT").unwrap(); // dirty buffer
            s.revcomp_into(&mut out);
            assert_eq!(out, reference, "len {len}");
            assert_eq!(out.words().len(), reference.words().len(), "len {len}");
            assert_eq!(s.revcomp(), reference, "len {len}");
        }
    }

    #[test]
    fn copy_range_into_matches_per_base_reference() {
        let s = arb_seq(200, 42);
        let mut out = DnaSeq::new();
        for (start, end) in [
            (0, 0),
            (0, 200),
            (1, 33),
            (31, 32),
            (32, 96),
            (7, 199),
            (64, 64),
        ] {
            let reference: DnaSeq = (start..end)
                .map(|i| Base::from_code_unchecked(s.code_at(i)))
                .collect();
            s.copy_range_into(start..end, &mut out);
            assert_eq!(out, reference, "range {start}..{end}");
            assert_eq!(s.subseq(start..end), reference, "range {start}..{end}");
        }
    }

    #[test]
    fn codes_into_word_path_matches_per_base() {
        let s = arb_seq(150, 7);
        let mut buf = vec![9u8; 4]; // dirty buffer
        for (start, end) in [(0, 150), (0, 50), (50, 100), (100, 150), (3, 137), (10, 10)] {
            s.codes_into(start..end, &mut buf);
            let reference: Vec<u8> = (start..end).map(|i| s.code_at(i)).collect();
            assert_eq!(buf, reference, "range {start}..{end}");
        }
    }

    #[test]
    fn clear_keeps_capacity_and_resets() {
        let mut s = arb_seq(100, 3);
        let cap_words = s.words().len();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.extend(arb_seq(100, 3).iter());
        assert_eq!(s, arb_seq(100, 3));
        assert_eq!(s.words().len(), cap_words);
    }
}
