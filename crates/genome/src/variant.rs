//! Germline variant generation and donor-genome construction.
//!
//! Variant-calling experiments (paper Table 7) need a *donor* genome that
//! differs from the reference by a known truth set of SNPs and INDELs. Reads
//! are simulated from the donor; the mapper aligns them to the reference; the
//! variant caller should recover the truth set. [`DonorGenome`] also keeps a
//! donor→reference coordinate map so read simulators can emit ground-truth
//! reference positions for mapping-accuracy evaluation (Fig. 13).

use crate::{Base, Chromosome, DnaSeq, GenomeError, Locus, ReferenceGenome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of a small variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VariantKind {
    /// Single-nucleotide polymorphism.
    Snp,
    /// Insertion of novel sequence before the anchor position.
    Ins,
    /// Deletion of reference bases starting at the anchor position.
    Del,
}

/// A small germline variant against the reference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Variant {
    /// Chromosome index.
    pub chrom: u32,
    /// 0-based reference position: the substituted base (SNP), the base
    /// *before which* sequence is inserted (INS), or the first deleted base
    /// (DEL).
    pub pos: u64,
    /// Variant kind.
    pub kind: VariantKind,
    /// Inserted sequence (INS) or replacement base (SNP, length 1); empty
    /// for DEL.
    pub alt: DnaSeq,
    /// Number of deleted reference bases (DEL); 0 otherwise.
    pub del_len: u32,
}

impl Variant {
    /// Creates a SNP.
    pub fn snp(chrom: u32, pos: u64, alt: Base) -> Variant {
        let mut s = DnaSeq::new();
        s.push(alt);
        Variant {
            chrom,
            pos,
            kind: VariantKind::Snp,
            alt: s,
            del_len: 0,
        }
    }

    /// Creates an insertion of `seq` before `pos`.
    pub fn insertion(chrom: u32, pos: u64, seq: DnaSeq) -> Variant {
        Variant {
            chrom,
            pos,
            kind: VariantKind::Ins,
            alt: seq,
            del_len: 0,
        }
    }

    /// Creates a deletion of `len` bases starting at `pos`.
    pub fn deletion(chrom: u32, pos: u64, len: u32) -> Variant {
        Variant {
            chrom,
            pos,
            kind: VariantKind::Del,
            alt: DnaSeq::new(),
            del_len: len,
        }
    }

    /// Reference footprint of the variant: the half-open interval of
    /// reference positions it touches.
    pub fn ref_span(&self) -> std::ops::Range<u64> {
        match self.kind {
            VariantKind::Snp => self.pos..self.pos + 1,
            VariantKind::Ins => self.pos..self.pos,
            VariantKind::Del => self.pos..self.pos + self.del_len as u64,
        }
    }
}

/// Configuration for random variant generation.
#[derive(Clone, Copy, Debug)]
pub struct VariantProfile {
    /// Per-base SNP probability (paper §7.8 uses 1e-3).
    pub snp_rate: f64,
    /// Per-base INDEL probability (paper §7.8 uses 2e-4).
    pub indel_rate: f64,
    /// Maximum INDEL length; lengths are drawn uniformly in `1..=max`.
    pub max_indel_len: u32,
    /// Minimum spacing between consecutive variants, so truth comparison is
    /// unambiguous.
    pub min_spacing: u64,
}

impl Default for VariantProfile {
    fn default() -> VariantProfile {
        VariantProfile {
            snp_rate: 1e-3,
            indel_rate: 2e-4,
            max_indel_len: 6,
            min_spacing: 12,
        }
    }
}

/// Draws a sorted, non-overlapping variant set over the genome.
pub fn generate_variants(
    genome: &ReferenceGenome,
    profile: &VariantProfile,
    seed: u64,
) -> Vec<Variant> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (ci, chrom) in genome.chromosomes().iter().enumerate() {
        let mut pos = 0u64;
        let len = chrom.len() as u64;
        while pos < len {
            let r: f64 = rng.random();
            if r < profile.snp_rate {
                let cur = chrom.seq().get(pos as usize);
                let alt = cur.substitutions()[rng.random_range(0..3)];
                out.push(Variant::snp(ci as u32, pos, alt));
                pos += profile.min_spacing;
            } else if r < profile.snp_rate + profile.indel_rate {
                let ilen = rng.random_range(1..=profile.max_indel_len);
                if rng.random_bool(0.5) {
                    let seq: DnaSeq = (0..ilen)
                        .map(|_| Base::from_code(rng.random_range(0..4)))
                        .collect();
                    out.push(Variant::insertion(ci as u32, pos, seq));
                } else if pos + ilen as u64 + profile.min_spacing < len {
                    out.push(Variant::deletion(ci as u32, pos, ilen));
                }
                pos += profile.min_spacing + profile.max_indel_len as u64;
            } else {
                pos += 1;
            }
        }
    }
    out
}

/// One contiguous block of the donor↔reference coordinate correspondence.
#[derive(Clone, Copy, Debug)]
struct MapSegment {
    donor_start: u64,
    ref_start: u64,
    len: u64,
}

/// Donor→reference coordinate map for one chromosome.
#[derive(Clone, Debug, Default)]
pub struct CoordMap {
    segments: Vec<MapSegment>,
    donor_len: u64,
}

impl CoordMap {
    /// Maps a donor position to the corresponding reference position.
    /// Positions inside insertions map to the insertion anchor.
    ///
    /// # Panics
    ///
    /// Panics if `donor_pos` is beyond the donor chromosome.
    pub fn donor_to_ref(&self, donor_pos: u64) -> u64 {
        assert!(donor_pos < self.donor_len, "donor position out of bounds");
        // Find last segment with donor_start <= donor_pos.
        let idx = self
            .segments
            .partition_point(|s| s.donor_start <= donor_pos)
            .saturating_sub(1);
        let seg = &self.segments[idx];
        let off = donor_pos - seg.donor_start;
        if off < seg.len {
            seg.ref_start + off
        } else {
            // Inside inserted sequence that follows this segment: anchor to
            // the segment end.
            seg.ref_start + seg.len
        }
    }

    /// Donor chromosome length.
    pub fn donor_len(&self) -> u64 {
        self.donor_len
    }
}

/// A donor genome: the mutated sequence, the truth variant set, and
/// per-chromosome coordinate maps.
#[derive(Clone, Debug)]
pub struct DonorGenome {
    genome: ReferenceGenome,
    maps: Vec<CoordMap>,
    variants: Vec<Variant>,
}

impl DonorGenome {
    /// Applies `variants` (must be sorted by (chrom, pos) and
    /// non-overlapping) to the reference.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidVariant`] if variants are unsorted,
    /// overlapping or out of range.
    pub fn apply(
        reference: &ReferenceGenome,
        variants: Vec<Variant>,
    ) -> Result<DonorGenome, GenomeError> {
        let mut chroms = Vec::with_capacity(reference.num_chromosomes());
        let mut maps = Vec::with_capacity(reference.num_chromosomes());
        for (ci, chrom) in reference.chromosomes().iter().enumerate() {
            let vars: Vec<&Variant> = variants.iter().filter(|v| v.chrom == ci as u32).collect();
            for w in vars.windows(2) {
                if w[1].pos < w[0].ref_span().end || w[1].pos <= w[0].pos {
                    return Err(GenomeError::InvalidVariant(format!(
                        "variants unsorted or overlapping at chr{} pos {} / {}",
                        ci, w[0].pos, w[1].pos
                    )));
                }
            }
            let src = chrom.seq();
            let src_len = src.len() as u64;
            let mut donor = DnaSeq::with_capacity(src.len() + src.len() / 100);
            let mut map = CoordMap::default();
            let mut ref_cursor = 0u64;
            let mut donor_cursor = 0u64;
            let mut seg_ref_start = 0u64;
            let mut seg_donor_start = 0u64;

            let close_segment =
                |map: &mut CoordMap, seg_ref_start: u64, seg_donor_start: u64, len: u64| {
                    map.segments.push(MapSegment {
                        donor_start: seg_donor_start,
                        ref_start: seg_ref_start,
                        len,
                    });
                };

            for v in vars {
                if v.ref_span().end > src_len {
                    return Err(GenomeError::InvalidVariant(format!(
                        "variant at chr{} pos {} beyond chromosome end {}",
                        ci, v.pos, src_len
                    )));
                }
                // Copy reference up to the variant anchor.
                for p in ref_cursor..v.pos {
                    donor.push(src.get(p as usize));
                }
                donor_cursor += v.pos - ref_cursor;
                ref_cursor = v.pos;
                match v.kind {
                    VariantKind::Snp => {
                        // SNP continues the segment: lengths stay in sync.
                        donor.push(v.alt.get(0));
                        donor_cursor += 1;
                        ref_cursor += 1;
                    }
                    VariantKind::Ins => {
                        close_segment(
                            &mut map,
                            seg_ref_start,
                            seg_donor_start,
                            ref_cursor - seg_ref_start,
                        );
                        donor.extend_from_seq(&v.alt);
                        donor_cursor += v.alt.len() as u64;
                        seg_ref_start = ref_cursor;
                        seg_donor_start = donor_cursor;
                    }
                    VariantKind::Del => {
                        close_segment(
                            &mut map,
                            seg_ref_start,
                            seg_donor_start,
                            ref_cursor - seg_ref_start,
                        );
                        ref_cursor += v.del_len as u64;
                        seg_ref_start = ref_cursor;
                        seg_donor_start = donor_cursor;
                    }
                }
            }
            for p in ref_cursor..src_len {
                donor.push(src.get(p as usize));
            }
            close_segment(
                &mut map,
                seg_ref_start,
                seg_donor_start,
                src_len - seg_ref_start,
            );
            map.donor_len = donor.len() as u64;
            chroms.push(Chromosome::new(chrom.name().to_string(), donor));
            maps.push(map);
        }
        Ok(DonorGenome {
            genome: ReferenceGenome::from_chromosomes(chroms),
            maps,
            variants,
        })
    }

    /// The donor sequence as a genome (read simulators sample from this).
    pub fn genome(&self) -> &ReferenceGenome {
        &self.genome
    }

    /// The truth variant set.
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }

    /// Maps a donor locus to the reference position it originates from.
    pub fn donor_to_ref(&self, locus: Locus) -> Locus {
        Locus {
            chrom: locus.chrom,
            pos: self.maps[locus.chrom as usize].donor_to_ref(locus.pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> ReferenceGenome {
        ReferenceGenome::from_chromosomes(vec![Chromosome::new(
            "chr1",
            DnaSeq::from_ascii(b"ACGTACGTACGTACGTACGT").unwrap(),
        )])
    }

    #[test]
    fn snp_applies() {
        let r = reference();
        let d = DonorGenome::apply(&r, vec![Variant::snp(0, 2, Base::T)]).unwrap();
        assert_eq!(
            d.genome().chromosome(0).seq().to_string(),
            "ACTTACGTACGTACGTACGT"
        );
        assert_eq!(d.donor_to_ref(Locus { chrom: 0, pos: 10 }).pos, 10);
    }

    #[test]
    fn insertion_shifts_coordinates() {
        let r = reference();
        let ins = DnaSeq::from_ascii(b"GGG").unwrap();
        let d = DonorGenome::apply(&r, vec![Variant::insertion(0, 4, ins)]).unwrap();
        assert_eq!(
            d.genome().chromosome(0).seq().to_string(),
            "ACGTGGGACGTACGTACGTACGT"
        );
        // Donor position before insertion unchanged.
        assert_eq!(d.donor_to_ref(Locus { chrom: 0, pos: 3 }).pos, 3);
        // Donor positions inside insertion anchor at ref 4.
        assert_eq!(d.donor_to_ref(Locus { chrom: 0, pos: 5 }).pos, 4);
        // After insertion: shifted back by 3.
        assert_eq!(d.donor_to_ref(Locus { chrom: 0, pos: 10 }).pos, 7);
    }

    #[test]
    fn deletion_shifts_coordinates() {
        let r = reference();
        let d = DonorGenome::apply(&r, vec![Variant::deletion(0, 4, 2)]).unwrap();
        assert_eq!(
            d.genome().chromosome(0).seq().to_string(),
            "ACGTGTACGTACGTACGT"
        );
        assert_eq!(d.donor_to_ref(Locus { chrom: 0, pos: 3 }).pos, 3);
        assert_eq!(d.donor_to_ref(Locus { chrom: 0, pos: 4 }).pos, 6);
        assert_eq!(d.donor_to_ref(Locus { chrom: 0, pos: 10 }).pos, 12);
    }

    #[test]
    fn rejects_overlapping() {
        let r = reference();
        let res = DonorGenome::apply(
            &r,
            vec![Variant::deletion(0, 4, 3), Variant::snp(0, 5, Base::A)],
        );
        assert!(res.is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        let r = reference();
        assert!(DonorGenome::apply(&r, vec![Variant::deletion(0, 19, 5)]).is_err());
    }

    #[test]
    fn generated_variants_sorted_disjoint() {
        let g = crate::random::RandomGenomeBuilder::new(200_000)
            .seed(5)
            .build();
        let vars = generate_variants(&g, &VariantProfile::default(), 11);
        assert!(!vars.is_empty());
        for w in vars.windows(2) {
            if w[0].chrom == w[1].chrom {
                assert!(w[1].pos >= w[0].ref_span().end);
                assert!(w[1].pos > w[0].pos);
            }
        }
        // Rate sanity: roughly 1e-3 SNPs/base.
        let snps = vars.iter().filter(|v| v.kind == VariantKind::Snp).count();
        assert!(snps > 100 && snps < 400, "snps = {snps}");
        // Applies cleanly.
        let d = DonorGenome::apply(&g, vars).unwrap();
        assert!(d.genome().total_len() > 0);
    }
}
