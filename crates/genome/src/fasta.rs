//! Minimal FASTA reading and writing.
//!
//! `N` (and any other ambiguity code) in input sequences is stored as `A` in
//! the packed sequence and recorded in the chromosome's ambiguity mask, so
//! downstream seed extraction can skip those windows exactly like GenPair
//! skips seeds containing `N`.

use crate::{Base, Bitset, Chromosome, DnaSeq, GenomeError, ReferenceGenome};
use std::io::{BufRead, Write};

/// Reads a FASTA stream into a [`ReferenceGenome`].
///
/// # Errors
///
/// Returns [`GenomeError::ParseFormat`] if the stream does not start with a
/// header or an I/O error occurs.
pub fn read_fasta<R: BufRead>(reader: R) -> Result<ReferenceGenome, GenomeError> {
    let mut chroms = Vec::new();
    let mut name: Option<String> = None;
    let mut seq = DnaSeq::new();
    let mut n_positions: Vec<usize> = Vec::new();

    let mut flush = |name: &mut Option<String>, seq: &mut DnaSeq, n_positions: &mut Vec<usize>| {
        if let Some(n) = name.take() {
            let s = std::mem::take(seq);
            if n_positions.is_empty() {
                chroms.push(Chromosome::new(n, s));
            } else {
                let mut mask = Bitset::new(s.len());
                for &p in n_positions.iter() {
                    mask.set(p);
                }
                chroms.push(Chromosome::with_n_mask(n, s, mask));
                n_positions.clear();
            }
        }
    };

    for line in reader.lines() {
        let line = line.map_err(|e| GenomeError::ParseFormat(format!("io error: {e}")))?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            flush(&mut name, &mut seq, &mut n_positions);
            let id = header.split_whitespace().next().unwrap_or("").to_string();
            if id.is_empty() {
                return Err(GenomeError::ParseFormat("empty FASTA header".into()));
            }
            name = Some(id);
        } else {
            if name.is_none() {
                return Err(GenomeError::ParseFormat(
                    "sequence data before first FASTA header".into(),
                ));
            }
            for &ch in line.as_bytes() {
                match Base::from_ascii(ch) {
                    Some(b) => seq.push(b),
                    None => {
                        n_positions.push(seq.len());
                        seq.push(Base::A);
                    }
                }
            }
        }
    }
    flush(&mut name, &mut seq, &mut n_positions);
    Ok(ReferenceGenome::from_chromosomes(chroms))
}

/// Writes a genome as FASTA with 80-column wrapping.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_fasta<W: Write>(genome: &ReferenceGenome, mut writer: W) -> std::io::Result<()> {
    for chrom in genome.chromosomes() {
        writeln!(writer, ">{}", chrom.name())?;
        let ascii = chrom.seq().to_ascii();
        for chunk in ascii.chunks(80) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = ReferenceGenome::from_chromosomes(vec![
            Chromosome::new("chr1", DnaSeq::from_ascii(b"ACGTACGT").unwrap()),
            Chromosome::new("chr2", DnaSeq::from_ascii(b"TTTTGGGG").unwrap()),
        ]);
        let mut buf = Vec::new();
        write_fasta(&g, &mut buf).unwrap();
        let g2 = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(g2.num_chromosomes(), 2);
        assert_eq!(g2.chromosome(0).seq().to_string(), "ACGTACGT");
        assert_eq!(g2.chromosome(1).name(), "chr2");
    }

    #[test]
    fn n_goes_to_mask() {
        let fasta = b">c desc here\nACGNNACG\n";
        let g = read_fasta(&fasta[..]).unwrap();
        let c = g.chromosome(0);
        assert_eq!(c.name(), "c");
        assert_eq!(c.len(), 8);
        assert!(c.has_n_in(3, 5));
        assert!(!c.has_n_in(0, 3));
        assert!(!c.has_n_in(5, 8));
    }

    #[test]
    fn rejects_headerless() {
        assert!(read_fasta(&b"ACGT\n"[..]).is_err());
    }

    #[test]
    fn multiline_sequences_concatenate() {
        let g = read_fasta(&b">x\nACGT\nacgt\n"[..]).unwrap();
        assert_eq!(g.chromosome(0).seq().to_string(), "ACGTACGT");
    }
}
