/// Errors produced by the genome substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenomeError {
    /// An ASCII byte that is not one of `ACGTacgt`.
    InvalidBase(u8),
    /// A malformed CIGAR string.
    InvalidCigar(String),
    /// A malformed FASTA/FASTQ stream.
    ParseFormat(String),
    /// A coordinate outside of the sequence/genome it refers to.
    OutOfBounds { pos: u64, len: u64 },
    /// Variants that cannot be applied (overlapping or out of range).
    InvalidVariant(String),
}

impl std::fmt::Display for GenomeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenomeError::InvalidBase(b) => {
                write!(f, "invalid nucleotide byte 0x{b:02x} ({:?})", *b as char)
            }
            GenomeError::InvalidCigar(s) => write!(f, "invalid CIGAR string: {s}"),
            GenomeError::ParseFormat(s) => write!(f, "parse error: {s}"),
            GenomeError::OutOfBounds { pos, len } => {
                write!(f, "position {pos} out of bounds for length {len}")
            }
            GenomeError::InvalidVariant(s) => write!(f, "invalid variant: {s}"),
        }
    }
}

impl std::error::Error for GenomeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = GenomeError::InvalidBase(b'N');
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert!(msg.starts_with("invalid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GenomeError>();
    }
}
