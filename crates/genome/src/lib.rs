//! DNA substrate for the GenPairX reproduction.
//!
//! This crate provides every genome-adjacent building block the rest of the
//! workspace depends on:
//!
//! * [`Base`] and [`DnaSeq`] — a 2-bit packed nucleotide sequence,
//! * [`ReferenceGenome`] / [`Chromosome`] — multi-chromosome references with a
//!   flat *global coordinate* space (used by the SeedMap location table),
//! * [`Cigar`] — alignment descriptions compatible with SAM semantics,
//! * [`SamRecord`] — a minimal alignment record used by the variant caller,
//! * [`random`] — repeat-rich synthetic genome generation (GRCh38 stand-in),
//! * [`variant`] — SNP/INDEL generation and donor-genome construction with
//!   donor→reference coordinate maps (ground truth for simulated reads),
//! * [`fasta`] / [`fastq`] — plain-text interchange formats.
//!
//! # Example
//!
//! ```
//! use gx_genome::{DnaSeq, random::RandomGenomeBuilder};
//!
//! # fn main() -> Result<(), gx_genome::GenomeError> {
//! let genome = RandomGenomeBuilder::new(100_000).chromosomes(2).seed(7).build();
//! assert_eq!(genome.total_len(), 100_000);
//! let s = DnaSeq::from_ascii(b"ACGTACGT")?;
//! assert_eq!(s.revcomp().to_string(), "ACGTACGT");
//! # Ok(())
//! # }
//! ```

mod base;
mod bitset;
mod cigar;
mod error;
pub mod fasta;
pub mod fastq;
pub mod random;
mod reference;
mod sam;
pub mod samfile;
mod seq;
pub mod variant;

pub use base::Base;
pub use bitset::Bitset;
pub use cigar::{Cigar, CigarOp};
pub use error::GenomeError;
pub use fastq::ReadRecord;
pub use reference::{Chromosome, Locus, ReferenceGenome};
pub use sam::{flags, SamRecord};
pub use seq::DnaSeq;

/// Position inside the flat concatenation of all chromosomes.
///
/// The SeedMap location table stores these as `u32`, which caps supported
/// references at 4 Gbp (GRCh38 is 3.1 Gbp; our synthetic stand-ins are far
/// smaller).
pub type GlobalPos = u32;
