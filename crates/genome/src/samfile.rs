//! SAM file output: header plus records, enough for external tools to
//! consume mapper output (the paper's pipeline produces BAM; plain SAM is
//! the transparent equivalent).

use crate::{ReferenceGenome, SamRecord};
use std::io::Write;

/// Writes a SAM header (`@HD` + one `@SQ` per chromosome + `@PG`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_sam_header<W: Write>(genome: &ReferenceGenome, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "@HD\tVN:1.6\tSO:unsorted")?;
    for chrom in genome.chromosomes() {
        writeln!(writer, "@SQ\tSN:{}\tLN:{}", chrom.name(), chrom.len())?;
    }
    writeln!(writer, "@PG\tID:genpairx\tPN:genpairx")?;
    Ok(())
}

/// Writes records (after a header) resolving chromosome names from
/// `genome`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_sam_records<W: Write>(
    genome: &ReferenceGenome,
    records: &[SamRecord],
    mut writer: W,
) -> std::io::Result<()> {
    for rec in records {
        let name = if rec.is_mapped() {
            genome.chromosome(rec.chrom).name()
        } else {
            "*"
        };
        writeln!(writer, "{}", rec.to_sam_line(name))?;
    }
    Ok(())
}

/// Convenience: header plus records in one call.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_sam<W: Write>(
    genome: &ReferenceGenome,
    records: &[SamRecord],
    mut writer: W,
) -> std::io::Result<()> {
    write_sam_header(genome, &mut writer)?;
    write_sam_records(genome, records, &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flags, Chromosome, Cigar, DnaSeq};

    fn genome() -> ReferenceGenome {
        ReferenceGenome::from_chromosomes(vec![
            Chromosome::new("chr1", DnaSeq::from_ascii(b"ACGTACGT").unwrap()),
            Chromosome::new("chr2", DnaSeq::from_ascii(b"TTTT").unwrap()),
        ])
    }

    #[test]
    fn header_lists_contigs() {
        let mut buf = Vec::new();
        write_sam_header(&genome(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("@SQ\tSN:chr1\tLN:8"));
        assert!(text.contains("@SQ\tSN:chr2\tLN:4"));
    }

    #[test]
    fn records_resolve_names() {
        let g = genome();
        let rec = SamRecord {
            qname: "q/1".into(),
            flags: flags::PAIRED,
            chrom: 1,
            pos: 0,
            mapq: 60,
            cigar: Cigar::parse("4M").unwrap(),
            seq: DnaSeq::from_ascii(b"TTTT").unwrap(),
            score: 8,
        };
        let mut buf = Vec::new();
        write_sam(&g, &[rec], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().last().unwrap().contains("\tchr2\t1\t"));
    }

    #[test]
    fn unmapped_records_use_star() {
        let g = genome();
        let rec = SamRecord::unmapped("u/1", flags::PAIRED, DnaSeq::from_ascii(b"AC").unwrap());
        let mut buf = Vec::new();
        write_sam_records(&g, &[rec], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\t*\t0\t"));
    }
}
