//! Repeat-rich synthetic genome generation.
//!
//! GRCh38 stand-in: a uniform random genome has essentially unique 50-mers,
//! which would make GenPair's SeedMap trivially precise (one location per
//! seed). The human genome instead averages ~9.5 locations per 50 bp seed
//! (paper Observation 2) because of interspersed repeats. The builder
//! reproduces that by planting *repeat families* — Alu-like units copied many
//! times with per-copy divergence — on top of a GC-biased random backbone.

use crate::{Base, Chromosome, DnaSeq, ReferenceGenome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of one repeat family to plant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepeatFamily {
    /// Length of the repeat unit in bases (Alu ≈ 300 bp).
    pub unit_len: usize,
    /// Number of copies pasted over the backbone.
    pub copies: usize,
    /// Per-base substitution probability applied independently to each copy
    /// (sequence divergence between family members).
    pub divergence: f64,
}

impl RepeatFamily {
    /// An Alu-like family: 300 bp units at the given copy count with 2%
    /// divergence — close enough to produce GenPair's multi-mapping seeds.
    pub fn alu_like(copies: usize) -> RepeatFamily {
        RepeatFamily {
            unit_len: 300,
            copies,
            divergence: 0.02,
        }
    }
}

/// Builder for synthetic reference genomes.
///
/// ```
/// use gx_genome::random::{RandomGenomeBuilder, RepeatFamily};
///
/// let genome = RandomGenomeBuilder::new(200_000)
///     .chromosomes(2)
///     .gc_content(0.41)
///     .repeat_family(RepeatFamily::alu_like(100))
///     .seed(42)
///     .build();
/// assert_eq!(genome.total_len(), 200_000);
/// ```
#[derive(Clone, Debug)]
pub struct RandomGenomeBuilder {
    total_len: u64,
    chromosomes: usize,
    gc_content: f64,
    families: Vec<RepeatFamily>,
    seed: u64,
}

impl RandomGenomeBuilder {
    /// Starts a builder for a genome of `total_len` bases.
    pub fn new(total_len: u64) -> RandomGenomeBuilder {
        RandomGenomeBuilder {
            total_len,
            chromosomes: 1,
            gc_content: 0.41, // human-like
            families: Vec::new(),
            seed: 0xB10_CAFE,
        }
    }

    /// Number of equally sized chromosomes (default 1).
    pub fn chromosomes(mut self, n: usize) -> RandomGenomeBuilder {
        assert!(n > 0, "need at least one chromosome");
        self.chromosomes = n;
        self
    }

    /// Fraction of G/C bases (default 0.41, human-like).
    pub fn gc_content(mut self, gc: f64) -> RandomGenomeBuilder {
        assert!((0.0..=1.0).contains(&gc), "GC content must be in [0, 1]");
        self.gc_content = gc;
        self
    }

    /// Adds a repeat family to plant.
    pub fn repeat_family(mut self, family: RepeatFamily) -> RandomGenomeBuilder {
        self.families.push(family);
        self
    }

    /// Adds a default human-like repeat mix scaled to the genome size:
    /// Alu-like 300 bp repeats covering ~13% of the genome, LINE-like 2 kb
    /// units, and two families of short low-divergence repeats. This yields
    /// multi-mapping 50-mers comparable in spirit to Observation 2 (the
    /// human genome averages ~9.5 locations per 50 bp seed).
    pub fn humanlike_repeats(mut self) -> RandomGenomeBuilder {
        let len = self.total_len as usize;
        self.families.push(RepeatFamily {
            unit_len: 300,
            copies: (len / 2300).max(4), // ~13% coverage
            divergence: 0.01,
        });
        self.families.push(RepeatFamily {
            unit_len: 2000,
            copies: (len / 40_000).max(2),
            divergence: 0.03,
        });
        self.families.push(RepeatFamily {
            unit_len: 80,
            copies: (len / 4000).max(4),
            divergence: 0.003,
        });
        self.families.push(RepeatFamily {
            unit_len: 150,
            copies: (len / 6000).max(4),
            divergence: 0.0,
        });
        self
    }

    /// RNG seed (deterministic output for a given builder configuration).
    pub fn seed(mut self, seed: u64) -> RandomGenomeBuilder {
        self.seed = seed;
        self
    }

    /// Generates the genome.
    pub fn build(&self) -> ReferenceGenome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let per_chrom = (self.total_len / self.chromosomes as u64) as usize;
        let mut lens = vec![per_chrom; self.chromosomes];
        // Put the remainder on the last chromosome.
        let used: u64 = (per_chrom as u64) * self.chromosomes as u64;
        *lens.last_mut().expect("at least one chromosome") += (self.total_len - used) as usize;

        let mut raw: Vec<Vec<u8>> = lens
            .iter()
            .map(|&len| {
                (0..len)
                    .map(|_| random_code(&mut rng, self.gc_content))
                    .collect()
            })
            .collect();

        // Plant repeat families over the backbone.
        for fam in &self.families {
            let master: Vec<u8> = (0..fam.unit_len)
                .map(|_| random_code(&mut rng, self.gc_content))
                .collect();
            for _ in 0..fam.copies {
                let chrom = rng.random_range(0..raw.len());
                let clen = raw[chrom].len();
                if clen <= fam.unit_len {
                    continue;
                }
                let start = rng.random_range(0..clen - fam.unit_len);
                for (i, &code) in master.iter().enumerate() {
                    let code = if rng.random_bool(fam.divergence) {
                        // substitute with a different base
                        let b = Base::from_code(code);
                        b.substitutions()[rng.random_range(0..3)].code()
                    } else {
                        code
                    };
                    raw[chrom][start + i] = code;
                }
            }
        }

        let chroms = raw
            .into_iter()
            .enumerate()
            .map(|(i, codes)| Chromosome::new(format!("chr{}", i + 1), DnaSeq::from_codes(&codes)))
            .collect();
        ReferenceGenome::from_chromosomes(chroms)
    }
}

fn random_code(rng: &mut StdRng, gc: f64) -> u8 {
    if rng.random_bool(gc) {
        // C or G
        if rng.random_bool(0.5) {
            1
        } else {
            2
        }
    } else if rng.random_bool(0.5) {
        0
    } else {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = RandomGenomeBuilder::new(10_000).seed(1).build();
        let b = RandomGenomeBuilder::new(10_000).seed(1).build();
        assert_eq!(
            a.chromosome(0).seq().to_ascii(),
            b.chromosome(0).seq().to_ascii()
        );
        let c = RandomGenomeBuilder::new(10_000).seed(2).build();
        assert_ne!(
            a.chromosome(0).seq().to_ascii(),
            c.chromosome(0).seq().to_ascii()
        );
    }

    #[test]
    fn chromosome_lengths_sum() {
        let g = RandomGenomeBuilder::new(10_001).chromosomes(3).build();
        assert_eq!(g.total_len(), 10_001);
        assert_eq!(g.num_chromosomes(), 3);
    }

    #[test]
    fn gc_content_is_respected() {
        let g = RandomGenomeBuilder::new(100_000)
            .gc_content(0.6)
            .seed(3)
            .build();
        let seq = g.chromosome(0).seq();
        let gc = seq
            .iter()
            .filter(|b| *b == Base::C || *b == Base::G)
            .count() as f64
            / seq.len() as f64;
        assert!((gc - 0.6).abs() < 0.02, "observed GC {gc}");
    }

    #[test]
    fn repeats_create_duplicate_kmers() {
        let plain = RandomGenomeBuilder::new(100_000).seed(9).build();
        let repeated = RandomGenomeBuilder::new(100_000)
            .seed(9)
            .repeat_family(RepeatFamily {
                unit_len: 300,
                copies: 100,
                divergence: 0.0,
            })
            .build();
        let count_dups = |g: &ReferenceGenome| {
            let seq = g.chromosome(0).seq();
            let mut kmers: Vec<u64> = (0..seq.len() - 32)
                .step_by(16)
                .map(|i| seq.kmer_u64(i, 32))
                .collect();
            kmers.sort_unstable();
            kmers.windows(2).filter(|w| w[0] == w[1]).count()
        };
        assert!(count_dups(&repeated) > count_dups(&plain) + 50);
    }
}
