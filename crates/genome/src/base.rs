use crate::GenomeError;

/// A single DNA nucleotide, stored as a 2-bit code (A=0, C=1, G=2, T=3).
///
/// The code ordering matches the usual 2-bit packing used by read mappers so
/// that `code ^ 3` is the complement.
///
/// ```
/// use gx_genome::Base;
/// assert_eq!(Base::A.complement(), Base::T);
/// assert_eq!(Base::from_ascii(b'g'), Some(Base::G));
/// assert_eq!(Base::from_ascii(b'N'), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Base(u8);

impl Base {
    pub const A: Base = Base(0);
    pub const C: Base = Base(1);
    pub const G: Base = Base(2);
    pub const T: Base = Base(3);

    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Builds a base from its 2-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        assert!(code < 4, "base code out of range: {code}");
        Base(code)
    }

    /// Builds a base from its 2-bit code without the range check.
    ///
    /// Only the two low bits are kept, so any input is safe; the name follows
    /// the `_unchecked` convention to signal that validation is skipped.
    #[inline]
    pub fn from_code_unchecked(code: u8) -> Base {
        Base(code & 3)
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self.0
    }

    /// Parses an ASCII nucleotide (case-insensitive). Ambiguity codes such as
    /// `N` yield `None`.
    #[inline]
    pub fn from_ascii(ch: u8) -> Option<Base> {
        match ch {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        b"ACGT"[self.0 as usize]
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        Base(self.0 ^ 3)
    }

    /// The three bases different from `self`, in code order. Used by error
    /// and variant simulators to draw substitutions.
    pub fn substitutions(self) -> [Base; 3] {
        let mut out = [Base::A; 3];
        let mut i = 0;
        for b in Base::ALL {
            if b != self {
                out[i] = b;
                i += 1;
            }
        }
        out
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl TryFrom<u8> for Base {
    type Error = GenomeError;

    /// Converts an ASCII character into a base.
    fn try_from(ch: u8) -> Result<Base, GenomeError> {
        Base::from_ascii(ch).ok_or(GenomeError::InvalidBase(ch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_roundtrip() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn ambiguity_rejected() {
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'-'), None);
        assert!(Base::try_from(b'N').is_err());
    }

    #[test]
    fn substitutions_exclude_self() {
        for b in Base::ALL {
            let subs = b.substitutions();
            assert_eq!(subs.len(), 3);
            assert!(!subs.contains(&b));
        }
    }

    #[test]
    #[should_panic(expected = "base code out of range")]
    fn from_code_rejects_large() {
        let _ = Base::from_code(4);
    }
}
