//! Property-based tests for the genome substrate.

use gx_genome::{Base, Cigar, CigarOp, DnaSeq};
use proptest::prelude::*;

fn arb_dna(max_len: usize) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, 1..=max_len).prop_map(|codes| DnaSeq::from_codes(&codes))
}

proptest! {
    #[test]
    fn ascii_roundtrip(seq in arb_dna(300)) {
        let ascii = seq.to_ascii();
        let back = DnaSeq::from_ascii(&ascii).expect("valid ascii");
        prop_assert_eq!(back, seq);
    }

    #[test]
    fn revcomp_is_involution(seq in arb_dna(300)) {
        prop_assert_eq!(seq.revcomp().revcomp(), seq);
    }

    #[test]
    fn revcomp_reverses_complements(seq in arb_dna(100)) {
        let rc = seq.revcomp();
        prop_assert_eq!(rc.len(), seq.len());
        for i in 0..seq.len() {
            prop_assert_eq!(rc.get(i), seq.get(seq.len() - 1 - i).complement());
        }
    }

    #[test]
    fn subseq_concatenation(seq in arb_dna(200), split in 0usize..200) {
        let split = split.min(seq.len());
        let mut joined = seq.subseq(0..split);
        joined.extend_from_seq(&seq.subseq(split..seq.len()));
        prop_assert_eq!(joined, seq);
    }

    #[test]
    fn kmer_u64_matches_codes(seq in arb_dna(80), pos in 0usize..60, k in 1usize..=16) {
        prop_assume!(pos + k <= seq.len());
        let v = seq.kmer_u64(pos, k);
        for i in 0..k {
            prop_assert_eq!(((v >> (2 * i)) & 3) as u8, seq.code_at(pos + i));
        }
    }

    #[test]
    fn set_then_get(seq in arb_dna(100), pos in 0usize..100, code in 0u8..4) {
        let mut seq = seq;
        let pos = pos.min(seq.len() - 1);
        seq.set(pos, Base::from_code(code));
        prop_assert_eq!(seq.get(pos).code(), code);
    }
}

fn arb_cigar() -> impl Strategy<Value = Cigar> {
    prop::collection::vec(
        (
            1u32..200,
            prop::sample::select(vec![
                CigarOp::Match,
                CigarOp::Equal,
                CigarOp::Diff,
                CigarOp::Ins,
                CigarOp::Del,
                CigarOp::SoftClip,
            ]),
        ),
        1..12,
    )
    .prop_map(Cigar::from_runs)
}

proptest! {
    #[test]
    fn cigar_display_parse_roundtrip(cigar in arb_cigar()) {
        let text = cigar.to_string();
        let back = Cigar::parse(&text).expect("own display parses");
        prop_assert_eq!(back, cigar);
    }

    #[test]
    fn cigar_lengths_consistent(cigar in arb_cigar()) {
        let q: u64 = cigar.runs().iter().filter(|(_, op)| op.consumes_query()).map(|&(n, _)| n as u64).sum();
        let r: u64 = cigar.runs().iter().filter(|(_, op)| op.consumes_ref()).map(|&(n, _)| n as u64).sum();
        prop_assert_eq!(cigar.query_len(), q);
        prop_assert_eq!(cigar.ref_len(), r);
    }

    #[test]
    fn cigar_m_form_preserves_lengths(cigar in arb_cigar()) {
        let m = cigar.to_m_form();
        prop_assert_eq!(m.query_len(), cigar.query_len());
        prop_assert_eq!(m.ref_len(), cigar.ref_len());
    }
}

mod variants {
    use super::*;
    use gx_genome::random::RandomGenomeBuilder;
    use gx_genome::variant::{generate_variants, DonorGenome, VariantProfile};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn donor_coordinates_are_monotone(seed in 0u64..5000) {
            let genome = RandomGenomeBuilder::new(20_000).seed(seed).build();
            let vars = generate_variants(&genome, &VariantProfile::default(), seed);
            let donor = DonorGenome::apply(&genome, vars).expect("valid variants");
            let map_len = donor.genome().chromosome(0).len() as u64;
            let mut prev = 0u64;
            for dpos in (0..map_len).step_by(97) {
                let rpos = donor.donor_to_ref(gx_genome::Locus { chrom: 0, pos: dpos }).pos;
                prop_assert!(rpos >= prev, "coordinate map went backwards");
                prev = rpos;
            }
        }

        #[test]
        fn donor_length_reflects_indels(seed in 0u64..5000) {
            let genome = RandomGenomeBuilder::new(20_000).seed(seed).build();
            let vars = generate_variants(&genome, &VariantProfile::default(), seed ^ 1);
            let ins: i64 = vars.iter().map(|v| v.alt.len() as i64 * matches!(v.kind, gx_genome::variant::VariantKind::Ins) as i64).sum();
            let del: i64 = vars.iter().map(|v| v.del_len as i64).sum();
            let snp_alt: i64 = vars.iter().filter(|v| v.kind == gx_genome::variant::VariantKind::Snp).count() as i64;
            let _ = snp_alt;
            let donor = DonorGenome::apply(&genome, vars).expect("valid variants");
            prop_assert_eq!(
                donor.genome().total_len() as i64,
                genome.total_len() as i64 + ins - del
            );
        }
    }
}
