use crate::{DramConfig, DramStats};

/// DRAM energy model (DRAMsim3 substitute).
///
/// Energy is accounted per activation and per byte read, plus a static
/// background term per channel — the same decomposition DRAMsim3 reports.
/// Constants approximate published HBM2e/DDR5/GDDR6 figures (activation
/// energy of a few nJ, read energy of a few pJ/bit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramPowerModel {
    /// Energy per row activation (+implied precharge), in nanojoules.
    pub e_act_nj: f64,
    /// Read/IO energy per byte, in picojoules.
    pub e_rd_pj_per_byte: f64,
    /// Static background power per channel, in milliwatts.
    pub background_mw_per_channel: f64,
}

impl DramPowerModel {
    /// HBM2e: ~1 nJ activation, ~3.5 pJ/bit access+IO.
    pub fn hbm2e() -> DramPowerModel {
        DramPowerModel {
            e_act_nj: 1.0,
            e_rd_pj_per_byte: 28.0,
            background_mw_per_channel: 25.0,
        }
    }

    /// DDR5: ~2 nJ activation, ~10 pJ/bit end-to-end.
    pub fn ddr5() -> DramPowerModel {
        DramPowerModel {
            e_act_nj: 2.0,
            e_rd_pj_per_byte: 80.0,
            background_mw_per_channel: 60.0,
        }
    }

    /// GDDR6: ~1.5 nJ activation, ~7 pJ/bit.
    pub fn gddr6() -> DramPowerModel {
        DramPowerModel {
            e_act_nj: 1.5,
            e_rd_pj_per_byte: 56.0,
            background_mw_per_channel: 45.0,
        }
    }

    /// The model conventionally paired with a [`DramConfig`] preset.
    pub fn for_config(cfg: &DramConfig) -> DramPowerModel {
        match cfg.channels {
            32 => DramPowerModel::hbm2e(),
            8 => DramPowerModel::gddr6(),
            _ => DramPowerModel::ddr5(),
        }
    }

    /// Total energy in millijoules for `stats` over `seconds` of operation
    /// of `cfg`.
    pub fn energy_mj(&self, stats: &DramStats, cfg: &DramConfig, seconds: f64) -> f64 {
        let dynamic_mj = stats.activations as f64 * self.e_act_nj * 1e-6
            + stats.bytes as f64 * self.e_rd_pj_per_byte * 1e-9;
        let background_mj = self.background_mw_per_channel * cfg.channels as f64 * seconds;
        dynamic_mj + background_mj
    }

    /// Average power in milliwatts over `seconds`.
    pub fn power_mw(&self, stats: &DramStats, cfg: &DramConfig, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.energy_mj(stats, cfg, seconds) / seconds
    }
}

/// SRAM area/power model (CACTI 7.0 substitute), linear in capacity.
///
/// Constants are calibrated against the paper's Table 4, which reports
/// CACTI results scaled to 7 nm: the 11.74 MB centralized buffer costs
/// 6.13 mm² / 6.09 mW, and the 190 KB FIFOs cost 0.091 mm² / 3.36 mW
/// (FIFOs burn more power per MB because of their dual-ported, always-active
/// organization).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SramModel {
    /// Area per megabyte, in mm².
    pub mm2_per_mb: f64,
    /// Power per megabyte, in mW.
    pub mw_per_mb: f64,
}

impl SramModel {
    /// Large single-port buffer SRAM at 7 nm (centralized buffer).
    pub fn buffer_7nm() -> SramModel {
        SramModel {
            mm2_per_mb: 6.13 / 11.74,
            mw_per_mb: 6.09 / 11.74,
        }
    }

    /// Small dual-port FIFO SRAM at 7 nm.
    pub fn fifo_7nm() -> SramModel {
        SramModel {
            mm2_per_mb: 0.091 / (190.0 / 1024.0),
            mw_per_mb: 3.36 / (190.0 / 1024.0),
        }
    }

    /// Area of `bytes` of SRAM in mm².
    pub fn area_mm2(&self, bytes: u64) -> f64 {
        bytes as f64 / (1024.0 * 1024.0) * self.mm2_per_mb
    }

    /// Power of `bytes` of SRAM in mW.
    pub fn power_mw(&self, bytes: u64) -> f64 {
        bytes as f64 / (1024.0 * 1024.0) * self.mw_per_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_model_reproduces_table4() {
        let m = SramModel::buffer_7nm();
        let bytes = (11.74 * 1024.0 * 1024.0) as u64;
        assert!((m.area_mm2(bytes) - 6.13).abs() < 0.01);
        assert!((m.power_mw(bytes) - 6.09).abs() < 0.01);
    }

    #[test]
    fn fifo_model_reproduces_table4() {
        let m = SramModel::fifo_7nm();
        let bytes = 190 * 1024;
        assert!((m.area_mm2(bytes) - 0.091).abs() < 0.001);
        assert!((m.power_mw(bytes) - 3.36).abs() < 0.01);
    }

    #[test]
    fn dram_energy_scales_with_work() {
        let cfg = DramConfig::hbm2e_32ch();
        let m = DramPowerModel::hbm2e();
        let light = DramStats {
            activations: 100,
            bytes: 6_400,
            ..Default::default()
        };
        let heavy = DramStats {
            activations: 10_000,
            bytes: 640_000,
            ..Default::default()
        };
        let t = 1e-3;
        assert!(m.energy_mj(&heavy, &cfg, t) > m.energy_mj(&light, &cfg, t));
        // Background dominates at tiny workloads over long intervals.
        assert!(m.power_mw(&light, &cfg, 1.0) > m.background_mw_per_channel * 31.0);
    }

    #[test]
    fn power_zero_interval() {
        let m = DramPowerModel::ddr5();
        assert_eq!(
            m.power_mw(&DramStats::default(), &DramConfig::ddr5_4ch(), 0.0),
            0.0
        );
    }
}
