use crate::DramConfig;

/// A read request submitted to the simulator.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Byte address within the channel's address space.
    pub addr: u64,
    /// Bytes to read (split into bursts internally; sequential addresses).
    pub bytes: u32,
    /// Target channel. The NMSL partitions the Seed/Location tables across
    /// channels by seed hash, so the caller picks the channel explicitly.
    pub channel: u32,
    /// Caller tag returned in the [`Completion`].
    pub tag: u64,
}

/// A completed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The tag from the [`Request`].
    pub tag: u64,
    /// Cycle at which the last data beat arrived.
    pub cycle: u64,
}

/// Aggregate statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DramStats {
    /// Read bursts issued.
    pub bursts: u64,
    /// Row activations.
    pub activations: u64,
    /// Precharges.
    pub precharges: u64,
    /// Row conflicts: activations that had to close a live row first (the
    /// preceding precharge evicted an open row another access stream still
    /// wanted). Cold activations — opening a row in an idle bank — are
    /// `activations - row_conflicts`.
    pub row_conflicts: u64,
    /// Requests bounced by [`DramSim::try_submit`] because the channel
    /// queue was full (backpressure the caller had to absorb).
    pub rejections: u64,
    /// Channel-cycles with work queued (summed over channels; see
    /// [`DramSim::channel_cycles`] for the per-channel split).
    pub busy_cycles: u64,
    /// Channel-cycles with an empty queue. Per channel,
    /// `busy + idle == DramSim::cycle()` exactly.
    pub idle_cycles: u64,
    /// Bytes delivered.
    pub bytes: u64,
    /// Requests completed.
    pub completed: u64,
}

/// Busy/idle cycle split for a single channel. A cycle is *busy* when the
/// channel entered [`DramSim::tick`] with at least one request queued
/// (issuing, waiting on timing parameters, or retiring), *idle* otherwise —
/// so `busy + idle` always equals the simulator's cycle count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelCycles {
    /// Cycles with work queued.
    pub busy: u64,
    /// Cycles with nothing queued.
    pub idle: u64,
}

impl DramStats {
    /// Row-hit rate over issued bursts: bursts served without a fresh
    /// activation. (A burst can only issue once its row is open, so the hit
    /// rate is `1 - activations/bursts`.)
    pub fn row_hit_rate(&self) -> f64 {
        if self.bursts == 0 {
            0.0
        } else {
            1.0 - (self.activations.min(self.bursts)) as f64 / self.bursts as f64
        }
    }

    /// Fraction of activations that were row conflicts, in `[0, 1]`
    /// (`0.0` when no activations happened). A conflict is only ever
    /// counted at the activation that resolves it, so
    /// `row_conflicts <= activations` holds unconditionally.
    pub fn row_conflict_rate(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.row_conflicts as f64 / self.activations as f64
        }
    }

    /// The work done since an `earlier` snapshot of the same counters.
    ///
    /// This is the accounting primitive behind *persistent* simulation: a
    /// caller that keeps one long-lived [`DramSim`] across many dispatches
    /// snapshots `*sim.stats()` before a dispatch and subtracts it afterwards
    /// to attribute traffic (and, through
    /// [`DramPowerModel`](crate::DramPowerModel), energy) to exactly that
    /// dispatch.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not a prefix of `self` (any
    /// counter would go negative).
    pub fn since(&self, earlier: &DramStats) -> DramStats {
        debug_assert!(
            self.bursts >= earlier.bursts
                && self.activations >= earlier.activations
                && self.precharges >= earlier.precharges
                && self.row_conflicts >= earlier.row_conflicts
                && self.rejections >= earlier.rejections
                && self.busy_cycles >= earlier.busy_cycles
                && self.idle_cycles >= earlier.idle_cycles
                && self.bytes >= earlier.bytes
                && self.completed >= earlier.completed,
            "snapshot is not an earlier prefix of these stats"
        );
        DramStats {
            bursts: self.bursts - earlier.bursts,
            activations: self.activations - earlier.activations,
            precharges: self.precharges - earlier.precharges,
            row_conflicts: self.row_conflicts - earlier.row_conflicts,
            rejections: self.rejections - earlier.rejections,
            busy_cycles: self.busy_cycles - earlier.busy_cycles,
            idle_cycles: self.idle_cycles - earlier.idle_cycles,
            bytes: self.bytes - earlier.bytes,
            completed: self.completed - earlier.completed,
        }
    }

    /// Adds another delta's counters into this one (the inverse of
    /// [`since`](DramStats::since): folding per-dispatch deltas back into a
    /// running total).
    pub fn accumulate(&mut self, other: &DramStats) {
        self.bursts += other.bursts;
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.row_conflicts += other.row_conflicts;
        self.rejections += other.rejections;
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
        self.bytes += other.bytes;
        self.completed += other.completed;
    }
}

#[derive(Clone, Copy, Debug)]
struct Bank {
    open_row: Option<u64>,
    /// Cycle at which the bank can accept its next command.
    ready_at: u64,
    /// Cycle of the last activate (for tRAS).
    activated_at: u64,
    /// The last precharge closed a live row; the next activate on this bank
    /// is a row conflict. Counting at the activate (not the precharge) keeps
    /// `row_conflicts <= activations` true at every instant.
    conflict_pending: bool,
}

#[derive(Clone, Debug)]
struct InFlight {
    tag: u64,
    cur_addr: u64,
    end_addr: u64,
    /// Completion cycle of the last burst issued (valid when all bursts
    /// issued).
    last_data_at: u64,
}

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    queue: std::collections::VecDeque<InFlight>,
    bus_free_at: u64,
}

/// Cycle-stepped multi-channel DRAM simulator.
///
/// The caller submits [`Request`]s (bounded per-channel queues — the NMSL
/// input FIFOs) and calls [`DramSim::tick`] once per memory cycle, draining
/// [`Completion`]s. Scheduling is FR-FCFS-lite: an open-row burst is
/// preferred over the oldest request's activate/precharge.
///
/// ```
/// use gx_memsim::{DramConfig, DramSim, Request};
///
/// let mut sim = DramSim::new(DramConfig::hbm2e_32ch());
/// assert!(sim.try_submit(Request { addr: 0, bytes: 64, channel: 0, tag: 7 }));
/// let mut done = Vec::new();
/// while done.is_empty() {
///     sim.tick(&mut done);
/// }
/// assert_eq!(done[0].tag, 7);
/// ```
#[derive(Debug)]
pub struct DramSim {
    cfg: DramConfig,
    channels: Vec<Channel>,
    channel_cycles: Vec<ChannelCycles>,
    cycle: u64,
    stats: DramStats,
}

impl DramSim {
    /// Creates a simulator for `cfg`.
    pub fn new(cfg: DramConfig) -> DramSim {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                banks: vec![
                    Bank {
                        open_row: None,
                        ready_at: 0,
                        activated_at: 0,
                        conflict_pending: false,
                    };
                    cfg.banks_per_channel as usize
                ],
                queue: std::collections::VecDeque::with_capacity(cfg.queue_depth),
                bus_free_at: 0,
            })
            .collect();
        DramSim {
            cfg,
            channel_cycles: vec![ChannelCycles::default(); cfg.channels as usize],
            channels,
            cycle: 0,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Per-channel busy/idle cycle split. Each entry partitions
    /// [`cycle()`](DramSim::cycle) exactly: `busy + idle == cycle()`.
    pub fn channel_cycles(&self) -> &[ChannelCycles] {
        &self.channel_cycles
    }

    /// Whether channel `ch` has room for another request.
    pub fn can_accept(&self, ch: u32) -> bool {
        self.channels[ch as usize].queue.len() < self.cfg.queue_depth
    }

    /// Occupancy of channel `ch`'s queue.
    pub fn queue_len(&self, ch: u32) -> usize {
        self.channels[ch as usize].queue.len()
    }

    /// Submits a request; returns `false` (rejecting it) when the channel
    /// queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range or `bytes` is zero.
    pub fn try_submit(&mut self, req: Request) -> bool {
        assert!(req.bytes > 0, "zero-byte request");
        let ch = &mut self.channels[req.channel as usize];
        if ch.queue.len() >= self.cfg.queue_depth {
            self.stats.rejections += 1;
            return false;
        }
        ch.queue.push_back(InFlight {
            tag: req.tag,
            cur_addr: req.addr,
            end_addr: req.addr + req.bytes as u64,
            last_data_at: 0,
        });
        true
    }

    /// Whether all queues are empty.
    pub fn idle(&self) -> bool {
        self.channels.iter().all(|c| c.queue.is_empty())
    }

    /// Advances one cycle, appending finished requests to `out`.
    pub fn tick(&mut self, out: &mut Vec<Completion>) {
        self.cycle += 1;
        let now = self.cycle;
        let cfg = self.cfg;
        for (ch, cycles) in self.channels.iter_mut().zip(self.channel_cycles.iter_mut()) {
            // Busy/idle attribution looks at the queue as the cycle begins:
            // a request retiring this very cycle still occupied the channel.
            if ch.queue.is_empty() {
                cycles.idle += 1;
                self.stats.idle_cycles += 1;
            } else {
                cycles.busy += 1;
                self.stats.busy_cycles += 1;
            }
            // Retire requests whose final burst has arrived.
            while let Some(front) = ch.queue.front() {
                if front.cur_addr >= front.end_addr && front.last_data_at <= now {
                    out.push(Completion {
                        tag: front.tag,
                        cycle: front.last_data_at,
                    });
                    self.stats.completed += 1;
                    ch.queue.pop_front();
                } else {
                    break;
                }
            }
            // Issue at most one command this cycle.
            // Pass 1 (FR): oldest request whose next burst hits an open row
            // and whose bank + data bus are free.
            let mut issued = false;
            for req in ch.queue.iter_mut() {
                if req.cur_addr >= req.end_addr {
                    continue;
                }
                let bank_i =
                    ((req.cur_addr / cfg.row_bytes as u64) % cfg.banks_per_channel as u64) as usize;
                let row = req.cur_addr / (cfg.row_bytes as u64 * cfg.banks_per_channel as u64);
                let bank = &mut ch.banks[bank_i];
                if bank.ready_at > now || ch.bus_free_at > now {
                    continue;
                }
                if bank.open_row == Some(row) {
                    // Row hit: issue the read burst.
                    let data_at = now + cfg.t_cl as u64 + cfg.t_burst as u64;
                    ch.bus_free_at = now + cfg.t_burst as u64;
                    bank.ready_at = now + cfg.t_burst as u64; // tCCD ~ burst
                    let burst = (req.end_addr - req.cur_addr).min(cfg.burst_bytes as u64);
                    req.cur_addr += cfg.burst_bytes as u64;
                    req.last_data_at = data_at;
                    self.stats.bursts += 1;
                    self.stats.bytes += burst;
                    issued = true;
                    break;
                }
            }
            if issued {
                continue;
            }
            // Pass 2 (FCFS): oldest request needing activate/precharge.
            for req in ch.queue.iter_mut() {
                if req.cur_addr >= req.end_addr {
                    continue;
                }
                let bank_i =
                    ((req.cur_addr / cfg.row_bytes as u64) % cfg.banks_per_channel as u64) as usize;
                let row = req.cur_addr / (cfg.row_bytes as u64 * cfg.banks_per_channel as u64);
                let bank = &mut ch.banks[bank_i];
                if bank.ready_at > now {
                    continue;
                }
                match bank.open_row {
                    Some(r) if r == row => continue, // handled in pass 1 (bus busy)
                    Some(_) => {
                        // Precharge, respecting tRAS.
                        let pre_at = now.max(bank.activated_at + cfg.t_ras as u64);
                        if pre_at > now {
                            continue;
                        }
                        bank.open_row = None;
                        bank.ready_at = now + cfg.t_rp as u64;
                        bank.conflict_pending = true;
                        self.stats.precharges += 1;
                    }
                    None => {
                        bank.open_row = Some(row);
                        bank.activated_at = now;
                        bank.ready_at = now + cfg.t_rcd as u64;
                        self.stats.activations += 1;
                        if bank.conflict_pending {
                            bank.conflict_pending = false;
                            self.stats.row_conflicts += 1;
                        }
                    }
                }
                break; // one command per channel per cycle
            }
        }
    }

    /// Runs until all submitted requests complete, returning completions.
    /// Intended for tests and micro-benchmarks.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut guard = 0u64;
        while !self.idle() {
            self.tick(&mut out);
            guard += 1;
            assert!(guard < 100_000_000, "simulator livelock");
        }
        out
    }

    /// Delivered bandwidth in GB/s over the simulated interval.
    pub fn delivered_gbs(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        self.stats.bytes as f64 / (self.cycle as f64 / self.cfg.clock_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::hbm2e_32ch()
    }

    #[test]
    fn single_read_latency() {
        let mut sim = DramSim::new(cfg());
        sim.try_submit(Request {
            addr: 0,
            bytes: 64,
            channel: 0,
            tag: 1,
        });
        let done = sim.drain();
        assert_eq!(done.len(), 1);
        // ACT (tRCD) + READ (tCL + burst) = 14 + 14 + 2, issued on cycle 1.
        let c = cfg();
        let expected = 1 + (c.t_rcd + c.t_cl + c.t_burst) as u64;
        assert_eq!(done[0].cycle, expected);
        assert_eq!(sim.stats().activations, 1);
    }

    #[test]
    fn sequential_reads_hit_rows() {
        let mut sim = DramSim::new(cfg());
        // One big sequential request = 16 bursts in one row.
        sim.try_submit(Request {
            addr: 0,
            bytes: 1024,
            channel: 0,
            tag: 2,
        });
        sim.drain();
        assert_eq!(sim.stats().activations, 1);
        assert_eq!(sim.stats().bursts, 16);
        assert!(sim.stats().row_hit_rate() > 0.9);
    }

    #[test]
    fn scattered_reads_miss_rows() {
        let mut sim = DramSim::new(cfg());
        let c = cfg();
        let row_stride = c.row_bytes as u64 * c.banks_per_channel as u64;
        for i in 0..8u64 {
            sim.try_submit(Request {
                addr: i * row_stride,
                bytes: 64,
                channel: 0,
                tag: i,
            });
        }
        sim.drain();
        assert!(sim.stats().row_hit_rate() < 0.01);
    }

    #[test]
    fn random_rows_cause_activations() {
        let mut sim = DramSim::new(cfg());
        let c = cfg();
        let row_stride = c.row_bytes as u64 * c.banks_per_channel as u64;
        for i in 0..8u64 {
            // Same bank, different rows -> precharge/activate each time.
            sim.try_submit(Request {
                addr: i * row_stride,
                bytes: 64,
                channel: 0,
                tag: i,
            });
        }
        sim.drain();
        assert_eq!(sim.stats().activations, 8);
        assert_eq!(sim.stats().precharges, 7);
        // Every precharge here closed a live row for a different one, so
        // every follow-up activate is a conflict; the first is cold.
        assert_eq!(sim.stats().row_conflicts, 7);
        assert!((sim.stats().row_conflict_rate() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_reads_are_conflict_free() {
        let mut sim = DramSim::new(cfg());
        sim.try_submit(Request {
            addr: 0,
            bytes: 1024,
            channel: 0,
            tag: 2,
        });
        sim.drain();
        assert_eq!(sim.stats().row_conflicts, 0);
        assert_eq!(sim.stats().row_conflict_rate(), 0.0);
    }

    #[test]
    fn busy_and_idle_partition_every_channel_cycle() {
        let mut sim = DramSim::new(cfg());
        sim.try_submit(Request {
            addr: 0,
            bytes: 256,
            channel: 0,
            tag: 1,
        });
        sim.drain();
        let mut out = Vec::new();
        for _ in 0..10 {
            sim.tick(&mut out); // trailing idle cycles on every channel
        }
        let cycle = sim.cycle();
        for (i, c) in sim.channel_cycles().iter().enumerate() {
            assert_eq!(c.busy + c.idle, cycle, "channel {i} cycles don't sum");
        }
        let ch0 = sim.channel_cycles()[0];
        assert!(ch0.busy > 0, "the loaded channel never counted busy");
        // Channel 1 never saw a request: all idle.
        assert_eq!(sim.channel_cycles()[1].busy, 0);
        let agg = sim.stats();
        assert_eq!(
            agg.busy_cycles + agg.idle_cycles,
            cycle * sim.config().channels as u64,
            "aggregate busy+idle must be cycle * channels"
        );
    }

    #[test]
    fn bandwidth_bounded_by_peak() {
        let mut sim = DramSim::new(cfg());
        let mut out = Vec::new();
        let mut tag = 0u64;
        for _ in 0..20_000 {
            for ch in 0..32u32 {
                if sim.can_accept(ch) {
                    sim.try_submit(Request {
                        addr: (tag % 4096) * 64,
                        bytes: 64,
                        channel: ch,
                        tag,
                    });
                    tag += 1;
                }
            }
            sim.tick(&mut out);
        }
        let gbs = sim.delivered_gbs();
        assert!(gbs <= sim.config().peak_gbs() * 1.001, "{gbs} GB/s");
        assert!(gbs > sim.config().peak_gbs() * 0.1, "{gbs} GB/s too low");
    }

    #[test]
    fn queue_rejects_when_full() {
        let mut sim = DramSim::new(cfg());
        let mut accepted = 0;
        for i in 0..100 {
            if sim.try_submit(Request {
                addr: i * 64,
                bytes: 64,
                channel: 0,
                tag: i,
            }) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, cfg().queue_depth);
        assert_eq!(sim.stats().rejections, 100 - cfg().queue_depth as u64);
    }

    #[test]
    fn channels_work_in_parallel() {
        // N requests to one channel vs spread over all channels: the spread
        // case must finish much faster.
        let run = |spread: bool| -> u64 {
            let mut sim = DramSim::new(cfg());
            let row_stride = 1024 * 16;
            let mut pending = 0u64;
            let mut i = 0u64;
            let mut out = Vec::new();
            while i < 256 || pending > 0 {
                if i < 256 {
                    let ch = if spread { (i % 32) as u32 } else { 0 };
                    if sim.try_submit(Request {
                        addr: i * row_stride,
                        bytes: 64,
                        channel: ch,
                        tag: i,
                    }) {
                        i += 1;
                        pending += 1;
                    }
                }
                sim.tick(&mut out);
                pending -= out.len() as u64;
                out.clear();
            }
            sim.cycle()
        };
        let single = run(false);
        let spread = run(true);
        assert!(spread * 4 < single, "spread {spread} vs single {single}");
    }

    #[test]
    fn stats_since_attributes_per_dispatch_work() {
        let mut sim = DramSim::new(cfg());
        sim.try_submit(Request {
            addr: 0,
            bytes: 128,
            channel: 0,
            tag: 1,
        });
        sim.drain();
        let snap = *sim.stats();
        sim.try_submit(Request {
            addr: 1 << 20,
            bytes: 64,
            channel: 1,
            tag: 2,
        });
        sim.drain();
        let delta = sim.stats().since(&snap);
        assert_eq!(delta.completed, 1);
        assert_eq!(delta.bytes, 64);
        // First dispatch's work is not re-attributed.
        assert_eq!(snap.completed, 1);
        assert_eq!(sim.stats().completed, 2);
    }

    #[test]
    fn completions_are_causal() {
        let mut sim = DramSim::new(cfg());
        sim.try_submit(Request {
            addr: 64,
            bytes: 128,
            channel: 3,
            tag: 9,
        });
        let done = sim.drain();
        assert!(done[0].cycle > 0 && done[0].cycle <= sim.cycle());
    }
}
