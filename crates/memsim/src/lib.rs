//! Cycle-level DRAM simulation and memory cost models.
//!
//! The paper models NMSL's memory system with Ramulator 2.0 (timing) and
//! DRAMsim3 (power), over HBM2e, and compares DDR5/GDDR6/HBM2 scaling
//! (Table 6). This crate is the reduced-fidelity substitute:
//!
//! * [`DramConfig`] — per-technology presets (channels, banks, JEDEC-style
//!   timing in memory-clock cycles),
//! * [`DramSim`] — a cycle-stepped multi-channel simulator with per-bank row
//!   state, FR-FCFS-lite scheduling, per-channel command/data buses and
//!   bounded request queues (the paper's per-channel FIFOs),
//! * [`DramPowerModel`] — activation/read/background energy accounting,
//! * [`SramModel`] — CACTI-calibrated SRAM area/power (used for NMSL's
//!   centralized buffer and FIFOs, paper Table 4).

mod config;
mod dram;
mod power;

pub use config::DramConfig;
pub use dram::{ChannelCycles, Completion, DramSim, DramStats, Request};
pub use power::{DramPowerModel, SramModel};
