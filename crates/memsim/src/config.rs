/// DRAM organization and timing for one memory technology.
///
/// Timings are in memory command-clock cycles. The presets approximate the
/// configurations in the paper's §6 (HBM2e: 4 stacks × 8 channels, 128-bit
/// channels at 1 GHz DDR = 2 Gb/s/pin) and §7.5 (DDR5 4 channels, GDDR6 8
/// channels).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Technology name for reports.
    pub name: &'static str,
    /// Independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
    /// Bytes delivered per read burst.
    pub burst_bytes: u32,
    /// Command clock in GHz.
    pub clock_ghz: f64,
    /// Data-bus occupancy of one burst, in cycles.
    pub t_burst: u32,
    /// Activate-to-read delay (tRCD).
    pub t_rcd: u32,
    /// Precharge delay (tRP).
    pub t_rp: u32,
    /// Read (CAS) latency (tCL).
    pub t_cl: u32,
    /// Minimum activate-to-precharge (tRAS).
    pub t_ras: u32,
    /// Per-channel request queue depth (the NMSL input FIFOs).
    pub queue_depth: usize,
}

impl DramConfig {
    /// HBM2e, 4 stacks × 8 channels (paper §6): 128-bit channels, 1 GHz DDR
    /// → 32 B/cycle, 64 B bursts in 2 cycles; 32 GB/s peak per channel,
    /// 1 TB/s aggregate.
    pub fn hbm2e_32ch() -> DramConfig {
        DramConfig {
            name: "HBM2 (32 Channels)",
            channels: 32,
            banks_per_channel: 16,
            row_bytes: 1024,
            burst_bytes: 64,
            clock_ghz: 1.0,
            t_burst: 2,
            t_rcd: 14,
            t_rp: 14,
            t_cl: 14,
            t_ras: 33,
            queue_depth: 16,
        }
    }

    /// DDR5, 4 channels (paper Table 6): 64-bit channels at 4800 MT/s
    /// (2.4 GHz command clock, 16 B/cycle), 64 B bursts.
    pub fn ddr5_4ch() -> DramConfig {
        DramConfig {
            name: "DDR5 (4 channels)",
            channels: 4,
            banks_per_channel: 32,
            row_bytes: 2048,
            burst_bytes: 64,
            clock_ghz: 2.4,
            t_burst: 4,
            t_rcd: 34,
            t_rp: 34,
            t_cl: 34,
            t_ras: 77,
            queue_depth: 16,
        }
    }

    /// GDDR6, 8 channels (paper Table 6): 32-bit channels at 16 GT/s
    /// (2 GHz command clock, 8 B/cycle... modeled as 64 B bursts over 8
    /// cycles), long random-access turnaround.
    pub fn gddr6_8ch() -> DramConfig {
        DramConfig {
            name: "GDDR6 (8 Channels)",
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 2048,
            burst_bytes: 64,
            clock_ghz: 2.0,
            t_burst: 8,
            t_rcd: 39,
            t_rp: 39,
            t_cl: 39,
            t_ras: 90,
            queue_depth: 16,
        }
    }

    /// Peak bandwidth of one channel in GB/s.
    pub fn channel_peak_gbs(&self) -> f64 {
        self.burst_bytes as f64 / self.t_burst as f64 * self.clock_ghz
    }

    /// Aggregate peak bandwidth in GB/s.
    pub fn peak_gbs(&self) -> f64 {
        self.channel_peak_gbs() * self.channels as f64
    }

    /// Minimum random-access cycle of a bank (tRAS + tRP), used by
    /// analytical sanity checks.
    pub fn t_rc(&self) -> u32 {
        self.t_ras + self.t_rp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_peak_is_1tbs() {
        let c = DramConfig::hbm2e_32ch();
        assert!((c.channel_peak_gbs() - 32.0).abs() < 1e-9);
        assert!((c.peak_gbs() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn channel_ordering_matches_paper() {
        // HBM2 aggregate >> GDDR6 > DDR5 in channel count.
        let h = DramConfig::hbm2e_32ch();
        let g = DramConfig::gddr6_8ch();
        let d = DramConfig::ddr5_4ch();
        assert!(h.channels > g.channels && g.channels > d.channels);
        assert!(h.peak_gbs() > g.peak_gbs());
    }
}
