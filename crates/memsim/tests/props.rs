//! Property-based tests for the DRAM simulator: conservation, causality and
//! bandwidth bounds under randomized workloads.

use gx_memsim::{DramConfig, DramSim, Request};
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = DramConfig> {
    prop::sample::select(vec![
        DramConfig::hbm2e_32ch(),
        DramConfig::ddr5_4ch(),
        DramConfig::gddr6_8ch(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted request completes exactly once, bytes delivered match
    /// the requested totals, and completions are causal.
    #[test]
    fn conservation_and_causality(
        cfg in configs(),
        reqs in prop::collection::vec((0u64..(1 << 22), 1u32..600), 1..120),
    ) {
        let channels = cfg.channels;
        let mut sim = DramSim::new(cfg);
        let mut out = Vec::new();
        let mut accepted: Vec<Request> = Vec::new();
        let mut pending = reqs.iter().enumerate().collect::<std::collections::VecDeque<_>>();
        let mut guard = 0u64;
        while !pending.is_empty() || !sim.idle() {
            while let Some(&(i, &(addr, bytes))) = pending.front() {
                let req = Request {
                    addr,
                    bytes,
                    channel: (i as u32) % channels,
                    tag: i as u64,
                };
                if sim.try_submit(req) {
                    accepted.push(req);
                    pending.pop_front();
                } else {
                    break;
                }
            }
            sim.tick(&mut out);
            guard += 1;
            prop_assert!(guard < 3_000_000, "livelock");
        }
        // All requests eventually accepted (we retried until queues drained).
        prop_assert_eq!(accepted.len(), reqs.len());
        let mut tags: Vec<u64> = out.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), reqs.len(), "each request completes exactly once");
        for c in &out {
            prop_assert!(c.cycle > 0 && c.cycle <= sim.cycle() + 1);
        }
        let requested: u64 = reqs.iter().map(|&(_, b)| b as u64).sum();
        prop_assert_eq!(sim.stats().bytes, requested);
        prop_assert!(sim.delivered_gbs() <= sim.config().peak_gbs() * 1.001);
    }

    /// Activations never exceed bursts plus precharges bound; row-hit rate
    /// stays in [0, 1].
    #[test]
    fn stats_invariants(
        cfg in configs(),
        addrs in prop::collection::vec(0u64..(1 << 24), 1..80),
    ) {
        let channels = cfg.channels;
        let mut sim = DramSim::new(cfg);
        for (i, &addr) in addrs.iter().enumerate() {
            while !sim.try_submit(Request {
                addr,
                bytes: 64,
                channel: (i as u32) % channels,
                tag: i as u64,
            }) {
                let mut out = Vec::new();
                sim.tick(&mut out);
            }
        }
        sim.drain();
        let s = sim.stats();
        prop_assert!(s.activations <= s.bursts);
        prop_assert!(s.precharges <= s.activations);
        let r = s.row_hit_rate();
        prop_assert!((0.0..=1.0).contains(&r));
    }
}
