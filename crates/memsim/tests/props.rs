//! Property-based tests for the DRAM simulator: conservation, causality and
//! bandwidth bounds under randomized workloads.

use gx_memsim::{DramConfig, DramSim, DramStats, Request};
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = DramConfig> {
    prop::sample::select(vec![
        DramConfig::hbm2e_32ch(),
        DramConfig::ddr5_4ch(),
        DramConfig::gddr6_8ch(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted request completes exactly once, bytes delivered match
    /// the requested totals, and completions are causal.
    #[test]
    fn conservation_and_causality(
        cfg in configs(),
        reqs in prop::collection::vec((0u64..(1 << 22), 1u32..600), 1..120),
    ) {
        let channels = cfg.channels;
        let mut sim = DramSim::new(cfg);
        let mut out = Vec::new();
        let mut accepted: Vec<Request> = Vec::new();
        let mut pending = reqs.iter().enumerate().collect::<std::collections::VecDeque<_>>();
        let mut guard = 0u64;
        while !pending.is_empty() || !sim.idle() {
            while let Some(&(i, &(addr, bytes))) = pending.front() {
                let req = Request {
                    addr,
                    bytes,
                    channel: (i as u32) % channels,
                    tag: i as u64,
                };
                if sim.try_submit(req) {
                    accepted.push(req);
                    pending.pop_front();
                } else {
                    break;
                }
            }
            sim.tick(&mut out);
            guard += 1;
            prop_assert!(guard < 3_000_000, "livelock");
        }
        // All requests eventually accepted (we retried until queues drained).
        prop_assert_eq!(accepted.len(), reqs.len());
        let mut tags: Vec<u64> = out.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), reqs.len(), "each request completes exactly once");
        for c in &out {
            prop_assert!(c.cycle > 0 && c.cycle <= sim.cycle() + 1);
        }
        let requested: u64 = reqs.iter().map(|&(_, b)| b as u64).sum();
        prop_assert_eq!(sim.stats().bytes, requested);
        prop_assert!(sim.delivered_gbs() <= sim.config().peak_gbs() * 1.001);
    }

    /// Activations never exceed bursts plus precharges bound; row-hit rate
    /// stays in [0, 1].
    #[test]
    fn stats_invariants(
        cfg in configs(),
        addrs in prop::collection::vec(0u64..(1 << 24), 1..80),
    ) {
        let channels = cfg.channels;
        let mut sim = DramSim::new(cfg);
        for (i, &addr) in addrs.iter().enumerate() {
            while !sim.try_submit(Request {
                addr,
                bytes: 64,
                channel: (i as u32) % channels,
                tag: i as u64,
            }) {
                let mut out = Vec::new();
                sim.tick(&mut out);
            }
        }
        sim.drain();
        let s = sim.stats();
        prop_assert!(s.activations <= s.bursts);
        prop_assert!(s.precharges <= s.activations);
        let r = s.row_hit_rate();
        prop_assert!((0.0..=1.0).contains(&r));
        // Conflicts are counted at the activation that resolves them, so
        // they can never outrun activations and the rate is a fraction.
        prop_assert!(s.row_conflicts <= s.activations);
        let cr = s.row_conflict_rate();
        prop_assert!((0.0..=1.0).contains(&cr));
    }

    /// Busy and idle cycles exactly partition every channel's clock: for
    /// each channel `busy + idle == cycle()`, at any point in a workload —
    /// including mid-flight, not just after a drain — and the aggregate
    /// stats are the per-channel sums.
    #[test]
    fn busy_idle_partition_channel_clocks(
        cfg in configs(),
        addrs in prop::collection::vec(0u64..(1 << 24), 1..60),
        extra_ticks in 0u64..200,
    ) {
        let channels = cfg.channels;
        let mut sim = DramSim::new(cfg);
        let mut out = Vec::new();
        for (i, &addr) in addrs.iter().enumerate() {
            while !sim.try_submit(Request {
                addr,
                bytes: 64,
                channel: (i as u32) % channels,
                tag: i as u64,
            }) {
                sim.tick(&mut out);
            }
        }
        // Stop at an arbitrary mid-flight point: the partition is a
        // per-tick invariant, not a drain postcondition.
        for _ in 0..extra_ticks {
            sim.tick(&mut out);
        }
        let cycle = sim.cycle();
        let mut busy_sum = 0u64;
        let mut idle_sum = 0u64;
        for (ch, c) in sim.channel_cycles().iter().enumerate() {
            prop_assert_eq!(
                c.busy + c.idle, cycle,
                "channel {} busy+idle must equal the shared clock", ch
            );
            busy_sum += c.busy;
            idle_sum += c.idle;
        }
        prop_assert_eq!(sim.stats().busy_cycles, busy_sum);
        prop_assert_eq!(sim.stats().idle_cycles, idle_sum);
    }

    /// [`DramStats`] deltas form a commutative merge monoid: `accumulate`
    /// commutes and has the default (all-zero) stats as identity, and
    /// `since`/`accumulate` round-trip — a prefix snapshot plus the delta
    /// since it reconstructs the later snapshot exactly. This is the
    /// algebra that lets per-dispatch deltas merge across lanes in any
    /// order without changing warm totals.
    #[test]
    fn stats_deltas_merge_as_a_commutative_monoid(
        a in prop::collection::vec(0u64..(1 << 40), 9),
        b in prop::collection::vec(0u64..(1 << 40), 9),
    ) {
        let build = |v: Vec<u64>| DramStats {
            bursts: v[0],
            activations: v[1],
            precharges: v[2],
            row_conflicts: v[3],
            rejections: v[4],
            busy_cycles: v[5],
            idle_cycles: v[6],
            bytes: v[7],
            completed: v[8],
        };
        let (sa, sb) = (build(a), build(b));
        // Commutativity: a + b == b + a.
        let mut ab = sa;
        ab.accumulate(&sb);
        let mut ba = sb;
        ba.accumulate(&sa);
        prop_assert_eq!(ab, ba);
        // Identity: a + 0 == a.
        let mut with_zero = sa;
        with_zero.accumulate(&DramStats::default());
        prop_assert_eq!(with_zero, sa);
        // Round trip: `sa` is a prefix of `ab` by construction, so the
        // delta since it is exactly `sb`, and folding the delta back in
        // reconstructs the total.
        let delta = ab.since(&sa);
        prop_assert_eq!(delta, sb);
        let mut rebuilt = sa;
        rebuilt.accumulate(&delta);
        prop_assert_eq!(rebuilt, ab);
    }
}
