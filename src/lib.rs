//! GenPairX — a full-system reproduction of *"GenPairX: A Hardware-Algorithm
//! Co-Designed Accelerator for Paired-End Read Mapping"* (HPCA 2026).
//!
//! This facade crate re-exports every workspace crate under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! `genpairx` crate:
//!
//! * [`genome`] — DNA substrate (sequences, references, CIGAR, variants).
//! * [`align`] — scoring and dynamic-programming aligners.
//! * [`seedmap`] — the SeedMap index (Seed Table + Location Table).
//! * [`readsim`] — Mason-like paired-end and long-read simulators.
//! * [`core`] — the GenPair algorithm (seeding, query, paired-adjacency
//!   filtering, light alignment, fallback plumbing).
//! * [`baseline`] — minimap2-style software mapper and comparator models.
//! * [`memsim`] — cycle-level DRAM simulator (HBM2e/DDR5/GDDR6) and SRAM
//!   cost models.
//! * [`accel`] — the GenPairX hardware model (NMSL, module sizing,
//!   area/power roll-up, GenDP integration, end-to-end system comparison).
//! * [`vcall`] — pileup variant caller and accuracy evaluation.
//!
//! # Quickstart
//!
//! ```
//! use genpairx::genome::random::RandomGenomeBuilder;
//! use genpairx::readsim::PairedEndSimulator;
//! use genpairx::core::{GenPairConfig, GenPairMapper};
//!
//! let genome = RandomGenomeBuilder::new(100_000).seed(1).build();
//! let mut sim = PairedEndSimulator::new(&genome).seed(2);
//! let pairs = sim.simulate(50);
//!
//! let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
//! let mut mapped = 0;
//! for pair in &pairs {
//!     if mapper.map_pair(&pair.r1.seq, &pair.r2.seq).is_mapped() {
//!         mapped += 1;
//!     }
//! }
//! assert!(mapped > 40);
//! ```

pub use gx_accel as accel;
pub use gx_align as align;
pub use gx_baseline as baseline;
pub use gx_core as core;
pub use gx_genome as genome;
pub use gx_memsim as memsim;
pub use gx_readsim as readsim;
pub use gx_seedmap as seedmap;
pub use gx_vcall as vcall;
