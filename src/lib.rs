//! GenPairX — a full-system reproduction of *"GenPairX: A Hardware-Algorithm
//! Co-Designed Accelerator for Paired-End Read Mapping"* (HPCA 2026).
//!
//! This facade crate re-exports every workspace crate under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! `genpairx` crate. The full subsystem map — who owns which stage, the
//! FASTQ→SAM data-flow diagram, and the results-vs-timing contract — is
//! the repository-root `ARCHITECTURE.md`; the crates in dependency order:
//!
//! * [`genome`] — DNA substrate (sequences, references, CIGAR, variants).
//! * [`align`] — scoring and dynamic-programming aligners.
//! * [`seedmap`] — the SeedMap index (Seed Table + Location Table).
//! * [`readsim`] — Mason-like paired-end and long-read simulators.
//! * [`core`] — the GenPair algorithm (seeding, query, paired-adjacency
//!   filtering, light alignment, fallback plumbing).
//! * [`telemetry`] — std-only observability: sharded counters/gauges and
//!   log2 latency histograms merged lock-free at snapshot time, span
//!   tracing into per-worker ring buffers with a Chrome trace-event JSON
//!   exporter (Perfetto-viewable), and Prometheus-style text exposition.
//!   Zero-cost when disabled, and accounting-inert: wall-clock reads never
//!   feed the modeled stats, so warm totals and SAM bytes are unchanged by
//!   tracing.
//! * [`pipeline`] — the throughput engine: batching front-end, a worker
//!   pool fed through a work-stealing queue
//!   ([`pipeline::WorkStealQueue`]) with sharded statistics, and an
//!   ordered SAM emitter (see below).
//! * [`backend`] — pluggable mapping backends behind the
//!   [`backend::MapBackend`] factory / [`backend::MapSession`] session
//!   split: the software reference and the NMSL accelerator system model
//!   (warm per-worker simulator state, GenDP fallback costing, host-link
//!   transfer accounting with double-buffered DMA overlap),
//!   interchangeable under the pipeline.
//! * [`baseline`] — minimap2-style software mapper and comparator models.
//! * [`memsim`] — cycle-level DRAM simulator (HBM2e/DDR5/GDDR6) and SRAM
//!   cost models.
//! * [`accel`] — the GenPairX hardware model (NMSL, module sizing,
//!   area/power roll-up, GenDP integration, end-to-end system comparison).
//! * [`vcall`] — pileup variant caller and accuracy evaluation.
//!
//! # Quickstart
//!
//! ```
//! use genpairx::genome::random::RandomGenomeBuilder;
//! use genpairx::readsim::PairedEndSimulator;
//! use genpairx::core::{GenPairConfig, GenPairMapper};
//!
//! let genome = RandomGenomeBuilder::new(100_000).seed(1).build();
//! let mut sim = PairedEndSimulator::new(&genome).seed(2);
//! let pairs = sim.simulate(50);
//!
//! let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
//! let mut mapped = 0;
//! for pair in &pairs {
//!     if mapper.map_pair(&pair.r1.seq, &pair.r2.seq).is_mapped() {
//!         mapped += 1;
//!     }
//! }
//! assert!(mapped > 40);
//! ```
//!
//! # Throughput engine
//!
//! The per-pair call above is the algorithm; the [`pipeline`] crate is the
//! execution subsystem that gives it a throughput story. A
//! [`pipeline::PipelineBuilder`] configures worker threads, batch size,
//! queue depth and the unmapped-pair policy; the resulting
//! [`pipeline::MappingEngine`] batches input pairs, maps batches on a
//! worker pool sharing one [`core::GenPairMapper`], accumulates
//! [`core::PipelineStats`] in lock-free per-worker shards, and reassembles
//! SAM output **in input order** — byte-identical to a serial run for any
//! thread count or batch size.
//!
//! ```
//! use genpairx::genome::random::RandomGenomeBuilder;
//! use genpairx::readsim::PairedEndSimulator;
//! use genpairx::core::{GenPairConfig, GenPairMapper};
//! use genpairx::pipeline::{PipelineBuilder, ReadPair};
//!
//! let genome = RandomGenomeBuilder::new(100_000).seed(1).build();
//! let mut sim = PairedEndSimulator::new(&genome).seed(2);
//! let pairs: Vec<ReadPair> = sim
//!     .simulate(50)
//!     .into_iter()
//!     .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
//!     .collect();
//!
//! let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
//! let engine = PipelineBuilder::new().threads(2).batch_size(16).engine(&mapper);
//! let (records, report) = engine.run_collect(pairs);
//! assert_eq!(report.stats.pairs, 50);
//! assert_eq!(records.len(), 100); // two SAM records per pair
//! ```
//!
//! # Mapping backends: software vs accelerator on identical workloads
//!
//! `.engine(&mapper)` is shorthand for attaching the software backend. The
//! same engine drives the GenPairX accelerator system model instead —
//! mapping results (and therefore SAM bytes) are identical, but the report
//! gains a per-stage modeled cost breakdown: NMSL seeding cycles and DRAM
//! energy from a **warm** per-worker simulator whose state persists across
//! batches, GenDP cycles for every pair that left the fast path, and
//! host-link transfer seconds for every batch's bytes:
//!
//! ```
//! use genpairx::genome::random::RandomGenomeBuilder;
//! use genpairx::readsim::PairedEndSimulator;
//! use genpairx::core::{GenPairConfig, GenPairMapper};
//! use genpairx::backend::NmslBackend;
//! use genpairx::pipeline::{PipelineBuilder, ReadPair};
//!
//! let genome = RandomGenomeBuilder::new(100_000).seed(1).build();
//! let mut sim = PairedEndSimulator::new(&genome).seed(2);
//! let pairs: Vec<ReadPair> = sim
//!     .simulate(20)
//!     .into_iter()
//!     .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
//!     .collect();
//!
//! let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
//! let engine = PipelineBuilder::new()
//!     .threads(2)
//!     .batch_size(16)
//!     .backend(NmslBackend::new(&mapper));
//! let (_, report) = engine.run_collect(pairs);
//! assert_eq!(report.backend_name, "nmsl");
//! assert!(report.backend.seed_cycles > 0);
//! assert!(report.backend.energy_pj > 0.0);
//! assert!(report.backend.transfer_seconds > 0.0);
//! ```

pub use gx_accel as accel;
pub use gx_align as align;
pub use gx_backend as backend;
pub use gx_baseline as baseline;
pub use gx_core as core;
pub use gx_genome as genome;
pub use gx_memsim as memsim;
pub use gx_pipeline as pipeline;
pub use gx_readsim as readsim;
pub use gx_seedmap as seedmap;
pub use gx_telemetry as telemetry;
pub use gx_vcall as vcall;
