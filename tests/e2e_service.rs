//! Service-layer determinism suite: many concurrent jobs over one warm
//! device behave, per job and in aggregate, exactly like their solo runs.
//!
//! The service tentpole makes two hard promises, and this suite pins both
//! the way `e2e_warm_invariance.rs` pins the engine's:
//!
//! 1. **Per-job SAM byte-identity** — every job's SAM output (header and
//!    records, as emitted by its own [`SamTextSink`]) is byte-identical
//!    to that job's solo [`map_serial`] run, for every combination of
//!    concurrent-job count {2, 4} and worker-thread count {1, 2, 4},
//!    with per-job batch sizes and priorities deliberately mixed.
//! 2. **Bit-identical warm accounting** — the service-wide warm
//!    fingerprint (modeled cycles, energy, transfer, DRAM traffic; floats
//!    compared as bits) is the same for every thread count *and* equal to
//!    one plain [`MappingEngine`](genpairx::pipeline::MappingEngine) run
//!    over the concatenated job streams: the shared device's canonical
//!    release order (jobs in submission order, batches in index order)
//!    makes multi-tenancy invisible to the accounting model.
//!
//! Cancellation rides along: cancelling a job mid-stream must leave the
//! warm device and the scheduler healthy enough to admit and complete a
//! subsequent job whose bytes still match its solo reference.
//!
//! The service-liveness PR adds two more end-to-end proofs:
//!
//! 3. **Ingest-pool isolation** — a job whose input iterator blocks
//!    indefinitely must not delay a sibling's completion: the sibling
//!    joins in bounded time with its solo bytes, and the service's warm
//!    fingerprint equals an engine run over the sibling's pairs alone.
//! 4. **Deadline cancel after seal** — a sealed job cancelled by the
//!    deadline timer (on an injected [`ManualClock`], so the expiry is
//!    deterministic) before any of its batches reached the device must
//!    leave *zero* trace in warm accounting: the service fingerprint
//!    equals a single-engine run over the surviving jobs' pairs, and the
//!    cancelled job reports `pairs_accounted_after_cancel == 0`.

use genpairx::backend::{BackendStats, ManualClock, NmslBackend};
use genpairx::core::{GenPairConfig, GenPairMapper};
use genpairx::genome::{GenomeError, ReferenceGenome, SamRecord};
use genpairx::pipeline::{
    map_serial, FallbackPolicy, JobHandle, JobOutcome, JobReport, JobSpec, PipelineBuilder,
    Priority, ReadPair, RecordSink, SamTextSink, ServiceBuilder,
};
use genpairx::readsim::dataset::{simulate_dataset, standard_genome, DATASETS};
use std::io;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Fixed device sharding, matching the engine invariance suite.
const CHANNELS: usize = 4;

/// Total pairs across all jobs; debug builds step down so tier-1
/// `cargo test -q` stays minutes-scale (the properties are
/// size-independent — CI runs the full suite in release).
const N_PAIRS: usize = if cfg!(debug_assertions) { 400 } else { 1600 };

const JOB_COUNTS: [usize; 2] = [2, 4];
const THREADS: [usize; 3] = [1, 2, 4];
/// Ingest-pool sizes the determinism and liveness claims are checked at:
/// warm totals and per-job bytes must be ingester-count-invariant.
const INGESTERS: [usize; 2] = [1, 2];

/// Per-job batch sizes and priorities are deliberately non-uniform: the
/// determinism claims must hold under mixed traffic, not just twins.
const BATCH_SIZES: [usize; 4] = [3, 64, 17, 128];
const PRIORITIES: [Priority; 4] = [
    Priority::Normal,
    Priority::High,
    Priority::Low,
    Priority::Normal,
];

/// The warm accounting fields the service promises are schedule- and
/// tenancy-invariant, floats captured as bits so "identical" means
/// identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WarmFingerprint {
    sim_cycles: u64,
    seed_cycles: u64,
    fallback_cycles: u64,
    energy_pj_bits: u64,
    exposed_transfer_bits: u64,
    transfer_bits: u64,
    dram_bytes: u64,
    dram_requests: u64,
    pairs: u64,
}

impl WarmFingerprint {
    fn of(b: &BackendStats) -> WarmFingerprint {
        WarmFingerprint {
            sim_cycles: b.sim_cycles,
            seed_cycles: b.seed_cycles,
            fallback_cycles: b.fallback_cycles,
            energy_pj_bits: b.energy_pj.to_bits(),
            exposed_transfer_bits: b.exposed_transfer_seconds.to_bits(),
            transfer_bits: b.transfer_seconds.to_bits(),
            dram_bytes: b.dram_bytes,
            dram_requests: b.dram_requests,
            pairs: b.pairs,
        }
    }
}

fn dataset() -> (ReferenceGenome, Vec<ReadPair>) {
    let genome = standard_genome(300_000, 0x9E57);
    let pairs = simulate_dataset(&genome, &DATASETS[0], N_PAIRS)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect();
    (genome, pairs)
}

/// Splits the dataset into `n` contiguous job streams (uneven on purpose:
/// the first job gets the remainder).
fn split_jobs(pairs: &[ReadPair], n: usize) -> Vec<Vec<ReadPair>> {
    let base = pairs.len() / n;
    let mut jobs = Vec::with_capacity(n);
    let mut at = 0;
    for i in 0..n {
        let take = if i == 0 { base + pairs.len() % n } else { base };
        jobs.push(pairs[at..at + take].to_vec());
        at += take;
    }
    jobs
}

/// Each job's solo oracle: serial software mapping into a headered sink.
fn solo_sam(mapper: &GenPairMapper<'_>, genome: &ReferenceGenome, pairs: &[ReadPair]) -> Vec<u8> {
    let mut sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
    map_serial(
        mapper,
        FallbackPolicy::EmitUnmapped,
        pairs.to_vec(),
        &mut sink,
    )
    .unwrap();
    sink.into_inner().unwrap()
}

/// Polls a job handle to completion with a wall-clock bound: the liveness
/// tests must prove a join *returns*, so an unconditional blocking
/// [`JobHandle::join`] would turn a regression into a hang instead of a
/// failure.
fn join_within<S: 'static>(
    handle: JobHandle<'_, S>,
    timeout: Duration,
    what: &str,
) -> (JobReport, S) {
    let deadline = Instant::now() + timeout;
    while !handle.is_finished() {
        assert!(
            Instant::now() < deadline,
            "{what} did not finish within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.join()
}

/// Polls `cond` until it holds, panicking after `timeout`.
fn wait_until(timeout: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "{what} within {timeout:?}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Generous bound for "this join must come back": minutes-scale headroom
/// for loaded CI machines while still converting a liveness bug into a
/// test failure rather than a suite timeout.
const JOIN_BOUND: Duration = Duration::from_secs(120);

/// Runs all `jobs` concurrently through a service over a warm NMSL device
/// and returns each job's SAM bytes plus the service-wide warm totals.
fn run_service(
    mapper: &GenPairMapper<'_>,
    genome: &ReferenceGenome,
    jobs: &[Vec<ReadPair>],
    threads: usize,
    ingesters: usize,
) -> (Vec<Vec<u8>>, BackendStats) {
    let backend = NmslBackend::new(mapper).channels(CHANNELS);
    let (sams, report) = ServiceBuilder::new()
        .threads(threads)
        .ingesters(ingesters)
        .queue_depth(4)
        .serve(backend, |svc| {
            let handles: Vec<_> = jobs
                .iter()
                .enumerate()
                .map(|(i, job)| {
                    let spec = JobSpec::new()
                        .batch_size(BATCH_SIZES[i % BATCH_SIZES.len()])
                        .priority(PRIORITIES[i % PRIORITIES.len()]);
                    let sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
                    svc.submit_pairs(spec, job.clone(), sink).unwrap()
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let (report, sink) = h.join();
                    assert_eq!(report.outcome, JobOutcome::Completed);
                    assert_eq!(report.report.abort_reason, None);
                    sink.into_inner().unwrap()
                })
                .collect::<Vec<_>>()
        });
    assert_eq!(report.jobs_completed, jobs.len() as u64);
    assert_eq!(report.jobs_failed, 0);
    assert_eq!(report.ingesters, ingesters);
    (sams, report.backend)
}

#[test]
fn concurrent_jobs_emit_their_solo_bytes_and_warm_totals_are_invariant() {
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    for n_jobs in JOB_COUNTS {
        let jobs = split_jobs(&pairs, n_jobs);
        let solos: Vec<Vec<u8>> = jobs.iter().map(|j| solo_sam(&mapper, &genome, j)).collect();

        // The aggregate oracle: one plain engine run over the concatenated
        // job streams on the same device configuration. The service's
        // canonical release order makes its warm totals indistinguishable
        // from this single-tenant run.
        let concat: Vec<ReadPair> = jobs.iter().flatten().cloned().collect();
        let engine = PipelineBuilder::new()
            .threads(2)
            .batch_size(64)
            .backend(NmslBackend::new(&mapper).channels(CHANNELS));
        let (_, engine_report) = engine.run_collect(concat);
        let engine_fp = WarmFingerprint::of(&engine_report.backend);

        for threads in THREADS {
            for ingesters in INGESTERS {
                let (sams, backend) = run_service(&mapper, &genome, &jobs, threads, ingesters);
                for (i, (sam, solo)) in sams.iter().zip(&solos).enumerate() {
                    assert!(
                        sam == solo,
                        "job {i} SAM bytes diverge from its solo run at \
                         n_jobs={n_jobs} threads={threads} ingesters={ingesters}"
                    );
                }
                let fp = WarmFingerprint::of(&backend);
                assert_eq!(fp.pairs, N_PAIRS as u64);
                assert!(fp.seed_cycles > 0, "warm service modeled no seeding work");
                assert_eq!(
                    fp, engine_fp,
                    "service warm totals diverged from the single-engine \
                     concatenated run at n_jobs={n_jobs} threads={threads} \
                     ingesters={ingesters} (channels fixed at {CHANNELS})"
                );
            }
        }
    }
}

#[test]
fn cancellation_mid_stream_leaves_the_device_serving() {
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let follow_up = &pairs[..pairs.len() / 4];
    let solo = solo_sam(&mapper, &genome, follow_up);

    let backend = NmslBackend::new(&mapper).channels(CHANNELS);
    let (_, report) = ServiceBuilder::new()
        .threads(2)
        .queue_depth(2)
        .serve(backend, |svc| {
            // An endless job: only cancellation ends it.
            let seed_pair = pairs[0].clone();
            let endless = std::iter::repeat_with(move || Ok(seed_pair.clone()));
            let victim = svc
                .submit(
                    JobSpec::new().batch_size(8),
                    endless,
                    SamTextSink::with_header(&genome, Vec::new()).unwrap(),
                )
                .unwrap();
            while victim.snapshot().batches_processed < 3 {
                std::thread::yield_now();
            }
            assert!(victim.cancel());
            let (vr, vsink) = victim.join();
            assert_eq!(vr.outcome, JobOutcome::Cancelled);
            // Emission stopped at the ack: a clean prefix, nothing after.
            let bytes = vsink.into_inner().unwrap();
            assert!(!bytes.is_empty(), "header at minimum");

            // The acceptance criterion: the warm device takes the next
            // job and its bytes still match the solo oracle.
            let next = svc
                .submit_pairs(
                    JobSpec::new().batch_size(32),
                    follow_up.to_vec(),
                    SamTextSink::with_header(&genome, Vec::new()).unwrap(),
                )
                .unwrap();
            let (nr, nsink) = next.join();
            assert_eq!(nr.outcome, JobOutcome::Completed);
            assert!(
                nsink.into_inner().unwrap() == solo,
                "post-cancel job bytes diverge from its solo run"
            );
        });
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_completed, 1);
}

/// An input iterator that blocks inside `next()` until the test drops the
/// sender — the worst-behaved producer the ingest pool must tolerate.
/// Once the channel closes it reports a clean end of input, so the job
/// seals (empty) and the service tears down normally.
struct BlockingInput {
    gate: mpsc::Receiver<ReadPair>,
}

impl Iterator for BlockingInput {
    type Item = Result<ReadPair, GenomeError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.gate.recv().ok().map(Ok)
    }
}

#[test]
fn blocking_input_stalls_only_its_own_job() {
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    // The live job: small enough (2 batches + seal at batch size 64) that
    // one high-priority ingest visit admits and seals it, so the proof
    // holds even with a single ingester that then parks on the blocker.
    let live = &pairs[..128];
    let solo = solo_sam(&mapper, &genome, live);
    let engine = PipelineBuilder::new()
        .threads(2)
        .batch_size(64)
        .backend(NmslBackend::new(&mapper).channels(CHANNELS));
    let (_, engine_report) = engine.run_collect(live.to_vec());
    let engine_fp = WarmFingerprint::of(&engine_report.backend);

    for threads in THREADS {
        for ingesters in INGESTERS {
            let backend = NmslBackend::new(&mapper).channels(CHANNELS);
            let (_, report) = ServiceBuilder::new()
                .threads(threads)
                .ingesters(ingesters)
                .queue_depth(4)
                .serve(backend, |svc| {
                    // Submitted first and at high priority: the claimer
                    // visits it before the blocker either way.
                    let fast = svc
                        .submit_pairs(
                            JobSpec::new().batch_size(64).priority(Priority::High),
                            live.to_vec(),
                            SamTextSink::with_header(&genome, Vec::new()).unwrap(),
                        )
                        .unwrap();
                    let (gate, rx) = mpsc::channel();
                    let blocked = svc
                        .submit(
                            JobSpec::new().batch_size(8),
                            BlockingInput { gate: rx },
                            SamTextSink::with_header(&genome, Vec::new()).unwrap(),
                        )
                        .unwrap();

                    // The acceptance criterion: the sibling's join comes
                    // back in bounded time while the blocker still holds
                    // its ingester captive inside `next()`.
                    let (fr, fsink) = join_within(fast, JOIN_BOUND, "sibling of a blocked job");
                    assert_eq!(fr.outcome, JobOutcome::Completed);
                    assert!(
                        fsink.into_inner().unwrap() == solo,
                        "sibling bytes diverge from its solo run at \
                         threads={threads} ingesters={ingesters}"
                    );
                    assert!(
                        !blocked.is_finished(),
                        "the blocking job cannot have finished: its input \
                         never yielded and was never closed"
                    );

                    // Release the blocker: its iterator sees end of input,
                    // the job seals empty and completes with no records.
                    drop(gate);
                    let (br, _) = join_within(blocked, JOIN_BOUND, "released blocker");
                    assert_eq!(br.outcome, JobOutcome::Completed);
                    assert_eq!(br.report.records_written, 0);
                    assert_eq!(br.report.backend.pairs, 0);
                });
            assert_eq!(report.jobs_completed, 2);
            // The empty blocker is accounting-invisible: warm totals equal
            // an engine run over the live job's pairs alone.
            assert_eq!(
                WarmFingerprint::of(&report.backend),
                engine_fp,
                "warm totals diverged from the live job's solo engine run \
                 at threads={threads} ingesters={ingesters}"
            );
        }
    }
}

/// A sink that parks its worker: the first record signals the test, then
/// blocks until the test drops the gate sender; every record (including
/// the first, once released) flows byte-for-byte into the inner sink.
/// Blocking *inside emission* deterministically holds a one-batch job in
/// the window between seal and finalize — which is exactly where the
/// cancel-after-seal accounting leak used to live.
struct GatedSink {
    inner: SamTextSink<Vec<u8>>,
    signal: mpsc::Sender<()>,
    gate: mpsc::Receiver<()>,
    released: bool,
}

impl RecordSink for GatedSink {
    fn write_record(&mut self, rec: &SamRecord) -> io::Result<()> {
        if !self.released {
            self.released = true;
            let _ = self.signal.send(());
            let _ = self.gate.recv();
        }
        self.inner.write_record(rec)
    }
}

#[test]
fn deadline_cancel_after_seal_leaves_no_trace_in_warm_totals() {
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    for threads in THREADS {
        // One single-batch blocker job per worker (each worker maps the
        // batch — admitting it to the device — then parks inside the
        // job's sink), so the victim's batches provably never reach a
        // worker while its deadline expires.
        let blockers: Vec<&[ReadPair]> =
            (0..threads).map(|i| &pairs[i * 40..(i + 1) * 40]).collect();
        let victim_pairs = &pairs[threads * 40..threads * 40 + 80];
        let solos: Vec<Vec<u8>> = blockers
            .iter()
            .map(|w| solo_sam(&mapper, &genome, w))
            .collect();

        // The oracle deliberately excludes the victim: a job deadline-
        // cancelled before any device dispatch must not be priced at all.
        let survivors: Vec<ReadPair> = blockers.iter().flat_map(|w| w.iter().cloned()).collect();
        let engine = PipelineBuilder::new()
            .threads(2)
            .batch_size(64)
            .backend(NmslBackend::new(&mapper).channels(CHANNELS));
        let (_, engine_report) = engine.run_collect(survivors);
        let engine_fp = WarmFingerprint::of(&engine_report.backend);

        let clock = Arc::new(ManualClock::new());
        let backend = NmslBackend::new(&mapper).channels(CHANNELS);
        let (_, report) = ServiceBuilder::new()
            .threads(threads)
            .ingesters(2)
            .queue_depth(8)
            .clock(clock.clone())
            .serve(backend, |svc| {
                let (signal, blocked_workers) = mpsc::channel();
                let mut gates = Vec::new();
                let handles: Vec<_> = blockers
                    .iter()
                    .map(|w| {
                        let (gate_tx, gate_rx) = mpsc::channel();
                        gates.push(gate_tx);
                        let sink = GatedSink {
                            inner: SamTextSink::with_header(&genome, Vec::new()).unwrap(),
                            signal: signal.clone(),
                            gate: gate_rx,
                            released: false,
                        };
                        svc.submit_pairs(JobSpec::new().batch_size(40), w.to_vec(), sink)
                            .unwrap()
                    })
                    .collect();
                // All workers are provably parked once every blocker's
                // sink has signalled (their job cores are locked while
                // parked, so snapshots of the blockers would deadlock —
                // the signal channel is the only safe evidence).
                for _ in 0..threads {
                    blocked_workers
                        .recv_timeout(JOIN_BOUND)
                        .expect("every worker parks in a blocker's sink");
                }

                let victim = svc
                    .submit_pairs(
                        JobSpec::new()
                            .batch_size(40)
                            .priority(Priority::High)
                            .deadline(Duration::from_secs(5)),
                        victim_pairs.to_vec(),
                        SamTextSink::with_header(&genome, Vec::new()).unwrap(),
                    )
                    .unwrap();
                wait_until(JOIN_BOUND, "victim seals", || victim.snapshot().sealed);

                // Only now does time move: the deadline expiry is decided
                // purely on the injected clock, so the cancel lands in the
                // [sealed, finalized) window by construction, not by luck.
                clock.advance(Duration::from_secs(10));
                wait_until(JOIN_BOUND, "deadline timer cancels the victim", || {
                    victim.snapshot().cancelled
                });

                // Release the workers; the victim's queued batches are
                // dropped undispatched and it finalizes as cancelled.
                drop(gates);
                let (vr, _) = join_within(victim, JOIN_BOUND, "deadline-cancelled victim");
                assert_eq!(vr.outcome, JobOutcome::Cancelled);
                assert_eq!(
                    vr.report.abort_reason.as_deref(),
                    Some("job deadline exceeded")
                );
                assert_eq!(
                    vr.pairs_accounted_after_cancel, 0,
                    "no victim batch ever reached the device, so none of \
                     its pairs may be priced"
                );
                assert_eq!(vr.report.records_written, 0);

                for (i, (h, solo)) in handles.into_iter().zip(&solos).enumerate() {
                    let (wr, wsink) = join_within(h, JOIN_BOUND, "released blocker");
                    assert_eq!(wr.outcome, JobOutcome::Completed);
                    assert!(
                        wsink.inner.into_inner().unwrap() == *solo,
                        "blocker {i} bytes diverge from its solo run at \
                         threads={threads}"
                    );
                }
            });
        assert_eq!(report.jobs_completed, threads as u64);
        assert_eq!(report.jobs_cancelled, 1);
        assert_eq!(report.deadline_cancels, 1);
        assert_eq!(
            WarmFingerprint::of(&report.backend),
            engine_fp,
            "a deadline-cancelled sealed job leaked into warm totals at \
             threads={threads}"
        );
    }
}
