//! Service-layer determinism suite: many concurrent jobs over one warm
//! device behave, per job and in aggregate, exactly like their solo runs.
//!
//! The service tentpole makes two hard promises, and this suite pins both
//! the way `e2e_warm_invariance.rs` pins the engine's:
//!
//! 1. **Per-job SAM byte-identity** — every job's SAM output (header and
//!    records, as emitted by its own [`SamTextSink`]) is byte-identical
//!    to that job's solo [`map_serial`] run, for every combination of
//!    concurrent-job count {2, 4} and worker-thread count {1, 2, 4},
//!    with per-job batch sizes and priorities deliberately mixed.
//! 2. **Bit-identical warm accounting** — the service-wide warm
//!    fingerprint (modeled cycles, energy, transfer, DRAM traffic; floats
//!    compared as bits) is the same for every thread count *and* equal to
//!    one plain [`MappingEngine`](genpairx::pipeline::MappingEngine) run
//!    over the concatenated job streams: the shared device's canonical
//!    release order (jobs in submission order, batches in index order)
//!    makes multi-tenancy invisible to the accounting model.
//!
//! Cancellation rides along: cancelling a job mid-stream must leave the
//! warm device and the scheduler healthy enough to admit and complete a
//! subsequent job whose bytes still match its solo reference.

use genpairx::backend::{BackendStats, NmslBackend};
use genpairx::core::{GenPairConfig, GenPairMapper};
use genpairx::genome::ReferenceGenome;
use genpairx::pipeline::{
    map_serial, FallbackPolicy, JobOutcome, JobSpec, PipelineBuilder, Priority, ReadPair,
    SamTextSink, ServiceBuilder,
};
use genpairx::readsim::dataset::{simulate_dataset, standard_genome, DATASETS};

/// Fixed device sharding, matching the engine invariance suite.
const CHANNELS: usize = 4;

/// Total pairs across all jobs; debug builds step down so tier-1
/// `cargo test -q` stays minutes-scale (the properties are
/// size-independent — CI runs the full suite in release).
const N_PAIRS: usize = if cfg!(debug_assertions) { 400 } else { 1600 };

const JOB_COUNTS: [usize; 2] = [2, 4];
const THREADS: [usize; 3] = [1, 2, 4];

/// Per-job batch sizes and priorities are deliberately non-uniform: the
/// determinism claims must hold under mixed traffic, not just twins.
const BATCH_SIZES: [usize; 4] = [3, 64, 17, 128];
const PRIORITIES: [Priority; 4] = [
    Priority::Normal,
    Priority::High,
    Priority::Low,
    Priority::Normal,
];

/// The warm accounting fields the service promises are schedule- and
/// tenancy-invariant, floats captured as bits so "identical" means
/// identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WarmFingerprint {
    sim_cycles: u64,
    seed_cycles: u64,
    fallback_cycles: u64,
    energy_pj_bits: u64,
    exposed_transfer_bits: u64,
    transfer_bits: u64,
    dram_bytes: u64,
    dram_requests: u64,
    pairs: u64,
}

impl WarmFingerprint {
    fn of(b: &BackendStats) -> WarmFingerprint {
        WarmFingerprint {
            sim_cycles: b.sim_cycles,
            seed_cycles: b.seed_cycles,
            fallback_cycles: b.fallback_cycles,
            energy_pj_bits: b.energy_pj.to_bits(),
            exposed_transfer_bits: b.exposed_transfer_seconds.to_bits(),
            transfer_bits: b.transfer_seconds.to_bits(),
            dram_bytes: b.dram_bytes,
            dram_requests: b.dram_requests,
            pairs: b.pairs,
        }
    }
}

fn dataset() -> (ReferenceGenome, Vec<ReadPair>) {
    let genome = standard_genome(300_000, 0x9E57);
    let pairs = simulate_dataset(&genome, &DATASETS[0], N_PAIRS)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect();
    (genome, pairs)
}

/// Splits the dataset into `n` contiguous job streams (uneven on purpose:
/// the first job gets the remainder).
fn split_jobs(pairs: &[ReadPair], n: usize) -> Vec<Vec<ReadPair>> {
    let base = pairs.len() / n;
    let mut jobs = Vec::with_capacity(n);
    let mut at = 0;
    for i in 0..n {
        let take = if i == 0 { base + pairs.len() % n } else { base };
        jobs.push(pairs[at..at + take].to_vec());
        at += take;
    }
    jobs
}

/// Each job's solo oracle: serial software mapping into a headered sink.
fn solo_sam(mapper: &GenPairMapper<'_>, genome: &ReferenceGenome, pairs: &[ReadPair]) -> Vec<u8> {
    let mut sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
    map_serial(
        mapper,
        FallbackPolicy::EmitUnmapped,
        pairs.to_vec(),
        &mut sink,
    )
    .unwrap();
    sink.into_inner().unwrap()
}

/// Runs all `jobs` concurrently through a service over a warm NMSL device
/// and returns each job's SAM bytes plus the service-wide warm totals.
fn run_service(
    mapper: &GenPairMapper<'_>,
    genome: &ReferenceGenome,
    jobs: &[Vec<ReadPair>],
    threads: usize,
) -> (Vec<Vec<u8>>, BackendStats) {
    let backend = NmslBackend::new(mapper).channels(CHANNELS);
    let (sams, report) =
        ServiceBuilder::new()
            .threads(threads)
            .queue_depth(4)
            .serve(backend, |svc| {
                let handles: Vec<_> = jobs
                    .iter()
                    .enumerate()
                    .map(|(i, job)| {
                        let spec = JobSpec::new()
                            .batch_size(BATCH_SIZES[i % BATCH_SIZES.len()])
                            .priority(PRIORITIES[i % PRIORITIES.len()]);
                        let sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
                        svc.submit_pairs(spec, job.clone(), sink).unwrap()
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        let (report, sink) = h.join();
                        assert_eq!(report.outcome, JobOutcome::Completed);
                        assert_eq!(report.report.abort_reason, None);
                        sink.into_inner().unwrap()
                    })
                    .collect::<Vec<_>>()
            });
    assert_eq!(report.jobs_completed, jobs.len() as u64);
    assert_eq!(report.jobs_failed, 0);
    (sams, report.backend)
}

#[test]
fn concurrent_jobs_emit_their_solo_bytes_and_warm_totals_are_invariant() {
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    for n_jobs in JOB_COUNTS {
        let jobs = split_jobs(&pairs, n_jobs);
        let solos: Vec<Vec<u8>> = jobs.iter().map(|j| solo_sam(&mapper, &genome, j)).collect();

        // The aggregate oracle: one plain engine run over the concatenated
        // job streams on the same device configuration. The service's
        // canonical release order makes its warm totals indistinguishable
        // from this single-tenant run.
        let concat: Vec<ReadPair> = jobs.iter().flatten().cloned().collect();
        let engine = PipelineBuilder::new()
            .threads(2)
            .batch_size(64)
            .backend(NmslBackend::new(&mapper).channels(CHANNELS));
        let (_, engine_report) = engine.run_collect(concat);
        let engine_fp = WarmFingerprint::of(&engine_report.backend);

        for threads in THREADS {
            let (sams, backend) = run_service(&mapper, &genome, &jobs, threads);
            for (i, (sam, solo)) in sams.iter().zip(&solos).enumerate() {
                assert!(
                    sam == solo,
                    "job {i} SAM bytes diverge from its solo run at \
                     n_jobs={n_jobs} threads={threads}"
                );
            }
            let fp = WarmFingerprint::of(&backend);
            assert_eq!(fp.pairs, N_PAIRS as u64);
            assert!(fp.seed_cycles > 0, "warm service modeled no seeding work");
            assert_eq!(
                fp, engine_fp,
                "service warm totals diverged from the single-engine \
                 concatenated run at n_jobs={n_jobs} threads={threads} \
                 (channels fixed at {CHANNELS})"
            );
        }
    }
}

#[test]
fn cancellation_mid_stream_leaves_the_device_serving() {
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let follow_up = &pairs[..pairs.len() / 4];
    let solo = solo_sam(&mapper, &genome, follow_up);

    let backend = NmslBackend::new(&mapper).channels(CHANNELS);
    let (_, report) = ServiceBuilder::new()
        .threads(2)
        .queue_depth(2)
        .serve(backend, |svc| {
            // An endless job: only cancellation ends it.
            let seed_pair = pairs[0].clone();
            let endless = std::iter::repeat_with(move || Ok(seed_pair.clone()));
            let victim = svc
                .submit(
                    JobSpec::new().batch_size(8),
                    endless,
                    SamTextSink::with_header(&genome, Vec::new()).unwrap(),
                )
                .unwrap();
            while victim.snapshot().batches_processed < 3 {
                std::thread::yield_now();
            }
            assert!(victim.cancel());
            let (vr, vsink) = victim.join();
            assert_eq!(vr.outcome, JobOutcome::Cancelled);
            // Emission stopped at the ack: a clean prefix, nothing after.
            let bytes = vsink.into_inner().unwrap();
            assert!(!bytes.is_empty(), "header at minimum");

            // The acceptance criterion: the warm device takes the next
            // job and its bytes still match the solo oracle.
            let next = svc
                .submit_pairs(
                    JobSpec::new().batch_size(32),
                    follow_up.to_vec(),
                    SamTextSink::with_header(&genome, Vec::new()).unwrap(),
                )
                .unwrap();
            let (nr, nsink) = next.join();
            assert_eq!(nr.outcome, JobOutcome::Completed);
            assert!(
                nsink.into_inner().unwrap() == solo,
                "post-cancel job bytes diverge from its solo run"
            );
        });
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_completed, 1);
}
