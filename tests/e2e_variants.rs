//! Integration: end-to-end variant calling through GenPair mapping (the
//! Table 7 pipeline at test scale).

use genpairx::core::{pair_mapping_to_sam, GenPairConfig, GenPairMapper};
use genpairx::genome::variant::{generate_variants, DonorGenome, VariantProfile};
use genpairx::readsim::dataset::standard_genome;
use genpairx::readsim::{ErrorModel, PairedEndSimulator};
use genpairx::vcall::{call_variants, compare_variants, CallerConfig, Pileup};

#[test]
fn variants_recovered_through_genpair_mapping() {
    let genome = standard_genome(200_000, 31);
    let truth = generate_variants(&genome, &VariantProfile::default(), 32);
    let donor = DonorGenome::apply(&genome, truth).expect("valid variants");
    assert!(donor.variants().len() > 50);

    let n_pairs = (genome.total_len() as usize * 25) / 300;
    let pairs = PairedEndSimulator::new(donor.genome())
        .seed(33)
        .error_model(ErrorModel::mason_default(0.001))
        .simulate(n_pairs);

    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let mut pile = Pileup::new(&genome);
    for p in &pairs {
        if let Some(m) = mapper.map_pair(&p.r1.seq, &p.r2.seq).mapping {
            let (s1, s2) = pair_mapping_to_sam(&m, &p.id, &p.r1.seq, &p.r2.seq);
            pile.add_record(&s1);
            pile.add_record(&s2);
        }
    }
    let calls = call_variants(&pile, &genome, &CallerConfig::default());
    let result = compare_variants(&calls, donor.variants());

    assert!(
        result.snp.f1() > 0.7,
        "SNP F1 {:.3} (tp={} fp={} fn={})",
        result.snp.f1(),
        result.snp.tp,
        result.snp.fp,
        result.snp.fn_
    );
    assert!(
        result.snp.precision() > 0.9,
        "SNP precision {:.3}",
        result.snp.precision()
    );
    // INDEL recovery is harder (light alignment's single-run model), but
    // a meaningful share must survive end to end.
    assert!(
        result.indel.recall() > 0.3,
        "INDEL recall {:.3}",
        result.indel.recall()
    );
}

#[test]
fn filter_threshold_trades_precision_for_recall() {
    // Fig. 13's qualitative claim at test scale: a restrictive threshold
    // must not *reduce* precision, and a permissive one must not *reduce*
    // the number of mapped pairs.
    let genome = standard_genome(200_000, 41);
    let ds_truth = generate_variants(&genome, &VariantProfile::default(), 42);
    let donor = DonorGenome::apply(&genome, ds_truth).expect("valid variants");
    let pairs = PairedEndSimulator::new(donor.genome())
        .seed(43)
        .simulate(200);

    let strict = GenPairMapper::build(&genome, &GenPairConfig::default().with_filter_threshold(50));
    let loose = GenPairMapper::build(
        &genome,
        &GenPairConfig::default().with_filter_threshold(100_000),
    );
    let mapped = |mapper: &GenPairMapper<'_>| -> usize {
        pairs
            .iter()
            .filter(|p| {
                let r = mapper.map_pair(&p.r1.seq, &p.r2.seq);
                r.mapping.is_some() && r.fallback.is_none()
            })
            .count()
    };
    let m_strict = mapped(&strict);
    let m_loose = mapped(&loose);
    assert!(
        m_loose >= m_strict,
        "loose filter mapped fewer pairs: {m_loose} < {m_strict}"
    );
}
