//! Integration: boundary behaviours the unit tests don't reach — reads at
//! chromosome edges, windows truncated by contig ends, multi-chromosome
//! coordinate handling, and end-to-end SAM plumbing.

use genpairx::core::{pair_mapping_to_sam, GenPairConfig, GenPairMapper};
use genpairx::genome::random::RandomGenomeBuilder;
use genpairx::genome::samfile::write_sam;
use genpairx::genome::{Chromosome, DnaSeq, ReferenceGenome};
use genpairx::seedmap::{SeedMap, SeedMapConfig};

#[test]
fn pair_at_chromosome_start_maps() {
    let genome = RandomGenomeBuilder::new(60_000).seed(61).build();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let seq = genome.chromosome(0).seq();
    // Read 1 begins at position 0: the light-alignment window is truncated
    // on the left and the anchor sits at the window start.
    let r1 = seq.subseq(0..150);
    let r2 = seq.subseq(250..400).revcomp();
    let res = mapper.map_pair(&r1, &r2);
    let m = res.mapping.expect("edge pair should map");
    assert_eq!(m.pos1, 0);
    assert_eq!(m.pos2, 250);
}

#[test]
fn pair_at_chromosome_end_maps() {
    let genome = RandomGenomeBuilder::new(60_000).seed(62).build();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let seq = genome.chromosome(0).seq();
    let n = seq.len();
    let r2 = seq.subseq(n - 150..n).revcomp();
    let r1 = seq.subseq(n - 400..n - 250);
    let res = mapper.map_pair(&r1, &r2);
    let m = res.mapping.expect("edge pair should map");
    assert_eq!(m.pos2 as usize, n - 150);
}

#[test]
fn cross_chromosome_candidates_rejected() {
    // Two chromosomes laid out adjacently in global coordinates: a pair
    // whose ends land on different chromosomes must not form a mapping,
    // even though the global positions are adjacent.
    let genome = RandomGenomeBuilder::new(120_000)
        .chromosomes(2)
        .seed(63)
        .build();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let c0 = genome.chromosome(0).seq();
    let c1 = genome.chromosome(1).seq();
    let r1 = c0.subseq(c0.len() - 150..c0.len()); // end of chr1
    let r2 = c1.subseq(100..250).revcomp(); // start of chr2
    let res = mapper.map_pair(&r1, &r2);
    if let Some(m) = &res.mapping {
        // If something mapped, it must be a within-chromosome placement
        // (e.g. a repeat copy), never a chimera.
        let end1 = m.pos1 as usize + 150;
        assert!(end1 <= genome.chromosome(m.chrom).len());
        let end2 = m.pos2 as usize + 150;
        assert!(end2 <= genome.chromosome(m.chrom).len());
    }
}

#[test]
fn seedmap_handles_tiny_chromosomes() {
    // Chromosomes shorter than the seed length are skipped, not crashed on.
    let genome = ReferenceGenome::from_chromosomes(vec![
        Chromosome::new("tiny", DnaSeq::from_ascii(b"ACGT").unwrap()),
        Chromosome::new(
            "normal",
            RandomGenomeBuilder::new(5_000)
                .seed(64)
                .build()
                .chromosome(0)
                .seq()
                .clone(),
        ),
    ]);
    let map = SeedMap::build(&genome, &SeedMapConfig::default());
    assert!(map.stats().stored_locations > 0);
    // All stored locations must come from the normal chromosome.
    let normal_start = genome.chrom_start(1) as u32;
    for h in (0u32..10_000).step_by(101) {
        for &loc in map.locations_for_hash(h) {
            assert!(loc >= normal_start, "location {loc} from tiny chromosome");
        }
    }
}

#[test]
fn sam_roundtrip_through_pileup() {
    use genpairx::vcall::Pileup;
    let genome = RandomGenomeBuilder::new(50_000).seed(65).build();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let seq = genome.chromosome(0).seq();
    let r1 = seq.subseq(7_000..7_150);
    let r2 = seq.subseq(7_200..7_350).revcomp();
    let m = mapper.map_pair(&r1, &r2).mapping.expect("maps");
    let (s1, s2) = pair_mapping_to_sam(&m, "edge", &r1, &r2);

    // SAM text renders with the right contig and 1-based coordinates.
    let mut buf = Vec::new();
    write_sam(&genome, &[s1.clone(), s2.clone()], &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains(&format!("\tchr1\t{}\t", 7_001)));

    // Pileup sees exactly the aligned columns.
    let mut pile = Pileup::new(&genome);
    pile.add_record(&s1);
    pile.add_record(&s2);
    assert_eq!(pile.depth(0, 7_075), 1);
    assert_eq!(pile.depth(0, 7_175), 0); // the insert gap between the ends
    assert_eq!(pile.depth(0, 7_275), 1);
    // And the bases agree with the reference (perfect reads).
    let c = pile.base_counts(0, 7_300);
    assert_eq!(c[seq.code_at(7_300) as usize], 1);
}

#[test]
fn nmsl_window_larger_than_workload() {
    use genpairx::accel::workload::{PairWorkload, SeedFetch};
    use genpairx::accel::{NmslConfig, NmslSim};
    use genpairx::memsim::DramConfig;
    let ws: Vec<PairWorkload> = (0..5)
        .map(|i| PairWorkload {
            seeds: vec![SeedFetch {
                hash: i * 1000,
                loc_start: i as u64 * 10,
                locations: 3,
            }],
        })
        .collect();
    let mut sim = NmslSim::new(
        DramConfig::hbm2e_32ch(),
        NmslConfig {
            window: Some(1_000_000),
            ..NmslConfig::default()
        },
    );
    let res = sim.run(&ws);
    assert_eq!(res.pairs, 5);
    assert!(res.max_inflight_pairs <= 5);
}

#[test]
fn mapper_rejects_short_reads_gracefully() {
    let genome = RandomGenomeBuilder::new(30_000).seed(66).build();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let short = genome.chromosome(0).seq().subseq(100..130); // < seed_len
    let r2 = genome.chromosome(0).seq().subseq(300..450).revcomp();
    let res = mapper.map_pair(&short, &r2);
    assert!(res.mapping.is_none());
    assert!(res.fallback.is_some());
}
