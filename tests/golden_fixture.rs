//! Golden-fixture regression: a checked-in paired FASTQ plus its expected
//! SAM, byte-compared on every run.
//!
//! The serial-reference oracle (`tests/e2e_pipeline.rs`) proves the engine
//! agrees with *itself* — parallel output equals what this build's
//! `map_pair` produces serially. It cannot see cross-PR drift: if a change
//! silently alters mapping decisions, both sides of that comparison move
//! together. This suite closes that hole with fixtures under
//! `tests/fixtures/`: the golden SAM was produced by a past build, so any
//! PR that changes output bytes — mapper behavior, SAM formatting, genome
//! synthesis, the vendored RNG stream — fails here and has to regenerate
//! the fixture *explicitly* (`cargo test --release regenerate_golden_fixture
//! -- --ignored`), turning silent drift into a reviewed diff.
//!
//! Both backends are checked against the same golden bytes, so the
//! cross-backend identity contract is pinned to a durable artifact too.

use genpairx::backend::NmslBackend;
use genpairx::core::{GenPairConfig, GenPairMapper};
use genpairx::pipeline::{read_pairs_from_fastq, PipelineBuilder, ReadPair, SamTextSink};
use genpairx::readsim::dataset::{simulate_dataset, standard_genome, DATASETS};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Fixture genome: must stay byte-for-byte what produced the checked-in
/// files (the genome is rebuilt here, not checked in — its synthesis is
/// part of what the golden guards).
const GENOME_SIZE: u64 = 120_000;
const GENOME_SEED: u64 = 0x601D;
const N_PAIRS: usize = 48;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn fixture_genome() -> genpairx::genome::ReferenceGenome {
    standard_genome(GENOME_SIZE, GENOME_SEED)
}

/// Renders the fixture dataset as mate-paired FASTQ text (constant quality:
/// the mapper ignores qualities and SAM output carries the sequence only).
fn render_fastq(pairs: &[ReadPair]) -> (String, String) {
    let mut r1 = String::new();
    let mut r2 = String::new();
    for p in pairs {
        writeln!(r1, "@{}/1\n{}\n+\n{}", p.id, p.r1, "I".repeat(p.r1.len())).unwrap();
        writeln!(r2, "@{}/2\n{}\n+\n{}", p.id, p.r2, "I".repeat(p.r2.len())).unwrap();
    }
    (r1, r2)
}

fn simulate_fixture_pairs(genome: &genpairx::genome::ReferenceGenome) -> Vec<ReadPair> {
    simulate_dataset(genome, &DATASETS[0], N_PAIRS)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect()
}

fn map_to_sam<B: genpairx::backend::MapBackend>(
    genome: &genpairx::genome::ReferenceGenome,
    backend: B,
    pairs: Vec<ReadPair>,
) -> Vec<u8> {
    let engine = PipelineBuilder::new()
        .threads(2)
        .batch_size(16)
        .backend(backend);
    let mut sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
    engine.run(pairs, &mut sink).unwrap();
    sink.into_inner().unwrap()
}

#[test]
fn golden_fastq_maps_to_golden_sam_on_both_backends() {
    let dir = fixture_dir();
    let r1 = std::fs::read(dir.join("golden_R1.fastq")).expect("missing fixture golden_R1.fastq");
    let r2 = std::fs::read(dir.join("golden_R2.fastq")).expect("missing fixture golden_R2.fastq");
    let golden_sam = std::fs::read(dir.join("golden.sam")).expect("missing fixture golden.sam");

    let pairs = read_pairs_from_fastq(&r1[..], &r2[..]).expect("fixture FASTQ must parse");
    assert_eq!(pairs.len(), N_PAIRS, "fixture pair count drifted");

    let genome = fixture_genome();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    let software = map_to_sam(
        &genome,
        genpairx::backend::SoftwareBackend::new(&mapper),
        pairs.clone(),
    );
    assert!(
        software == golden_sam,
        "software backend SAM drifted from the checked-in golden \
         (intentional change? regenerate with \
         `cargo test --release regenerate_golden_fixture -- --ignored`)"
    );

    let nmsl = map_to_sam(&genome, NmslBackend::new(&mapper), pairs.clone());
    assert!(
        nmsl == golden_sam,
        "NMSL backend SAM drifted from the checked-in golden"
    );

    // Telemetry is accounting-inert all the way down to the durable
    // artifact: a fully traced NMSL run must still hit the golden bytes.
    let telemetry = genpairx::telemetry::Telemetry::enabled();
    let engine = PipelineBuilder::new()
        .threads(2)
        .batch_size(16)
        .telemetry(telemetry.clone())
        .backend(NmslBackend::new(&mapper).telemetry(telemetry.clone()));
    let mut sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
    engine.run(pairs, &mut sink).unwrap();
    let traced = sink.into_inner().unwrap();
    assert!(
        traced == golden_sam,
        "tracing changed the NMSL backend's SAM bytes"
    );
    assert!(telemetry.chrome_trace().unwrap().contains("map_batch"));
}

#[test]
fn fixture_fastq_matches_its_generator() {
    // The FASTQ files themselves are fixtures too: if read simulation or
    // the vendored RNG stream changes, the *inputs* drift silently even if
    // mapping does not. Re-derive them and compare.
    let dir = fixture_dir();
    let genome = fixture_genome();
    let (r1, r2) = render_fastq(&simulate_fixture_pairs(&genome));
    let on_disk_r1 = std::fs::read(dir.join("golden_R1.fastq")).unwrap();
    let on_disk_r2 = std::fs::read(dir.join("golden_R2.fastq")).unwrap();
    assert!(r1.as_bytes() == on_disk_r1, "golden_R1.fastq drifted");
    assert!(r2.as_bytes() == on_disk_r2, "golden_R2.fastq drifted");
}

/// Regenerates the fixtures from the current build. Run explicitly after an
/// *intentional* output change, then review the fixture diff in the PR:
///
/// ```text
/// cargo test --release regenerate_golden_fixture -- --ignored
/// ```
#[test]
#[ignore = "writes tests/fixtures/; run explicitly after intentional output changes"]
fn regenerate_golden_fixture() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let genome = fixture_genome();
    let pairs = simulate_fixture_pairs(&genome);
    let (r1, r2) = render_fastq(&pairs);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let sam = map_to_sam(
        &genome,
        genpairx::backend::SoftwareBackend::new(&mapper),
        pairs,
    );
    std::fs::write(dir.join("golden_R1.fastq"), r1).unwrap();
    std::fs::write(dir.join("golden_R2.fastq"), r2).unwrap();
    std::fs::write(dir.join("golden.sam"), sam).unwrap();
}
