//! Integration: the full GenPair pipeline against simulation ground truth,
//! and agreement with the minimap2-style baseline.

use genpairx::baseline::{Mm2Config, Mm2Mapper, StageTimings, WorkCounters};
use genpairx::core::{GenPairConfig, GenPairMapper, PipelineStats};
use genpairx::genome::Locus;
use genpairx::readsim::dataset::{simulate_variant_dataset, standard_genome, DATASETS};

#[test]
fn genpair_maps_variant_reads_to_their_origin() {
    let genome = standard_genome(400_000, 1);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let ds = simulate_variant_dataset(&genome, &DATASETS[0], 300);

    let mut stats = PipelineStats::new();
    let mut correct = 0usize;
    let mut mapped = 0usize;
    for p in &ds.pairs {
        let res = mapper.map_pair(&p.r1.seq, &p.r2.seq);
        stats.record(&res);
        if let Some(m) = &res.mapping {
            mapped += 1;
            let t1 = ds.donor.donor_to_ref(Locus {
                chrom: p.truth.chrom,
                pos: p.truth.start1,
            });
            if m.chrom == t1.chrom && m.pos1.abs_diff(t1.pos) <= 25 {
                correct += 1;
            }
        }
    }
    assert!(mapped >= 270, "mapped only {mapped}/300");
    assert!(
        correct as f64 / mapped as f64 > 0.95,
        "only {correct}/{mapped} correct"
    );
    // The light path must carry the bulk of the work (paper: 76.1%).
    assert!(
        stats.light_mapped_pct() > 60.0,
        "{}",
        stats.light_mapped_pct()
    );
}

#[test]
fn genpair_and_baseline_agree_on_positions() {
    let genome = standard_genome(300_000, 2);
    let genpair = GenPairMapper::build(&genome, &GenPairConfig::default());
    let mm2 = Mm2Mapper::build(&genome, &Mm2Config::default());
    let ds = simulate_variant_dataset(&genome, &DATASETS[1], 150);

    let mut both = 0usize;
    let mut agree = 0usize;
    let mut t = StageTimings::default();
    let mut w = WorkCounters::default();
    for p in &ds.pairs {
        let g = genpair.map_pair(&p.r1.seq, &p.r2.seq);
        let b = mm2.map_pair(&p.r1.seq, &p.r2.seq, &mut t, &mut w);
        if let (Some(gm), Some(b1)) = (&g.mapping, &b.r1) {
            both += 1;
            if gm.chrom == b1.chrom && gm.pos1.abs_diff(b1.pos) <= 25 {
                agree += 1;
            }
        }
    }
    assert!(both > 100, "too few doubly-mapped pairs: {both}");
    assert!(agree as f64 / both as f64 > 0.9, "agreement {agree}/{both}");
}

#[test]
fn fallback_pairs_are_recovered_by_baseline() {
    // Whatever GenPair cannot map, the baseline should usually handle —
    // that is the premise of the GenPair+MM2 system.
    let genome = standard_genome(300_000, 3);
    let genpair = GenPairMapper::build(&genome, &GenPairConfig::default());
    let mm2 = Mm2Mapper::build(&genome, &Mm2Config::default());
    let ds = simulate_variant_dataset(&genome, &DATASETS[2], 200);

    let mut fallbacks = 0usize;
    let mut rescued = 0usize;
    let mut t = StageTimings::default();
    let mut w = WorkCounters::default();
    for p in &ds.pairs {
        let g = genpair.map_pair(&p.r1.seq, &p.r2.seq);
        if g.mapping.is_none() {
            fallbacks += 1;
            let b = mm2.map_pair(&p.r1.seq, &p.r2.seq, &mut t, &mut w);
            if b.r1.is_some() || b.r2.is_some() {
                rescued += 1;
            }
        }
    }
    if fallbacks > 0 {
        assert!(
            rescued * 2 >= fallbacks,
            "baseline rescued only {rescued}/{fallbacks}"
        );
    }
}

#[test]
fn long_read_pipeline_end_to_end() {
    let genome = standard_genome(600_000, 4);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let mut sim = genpairx::readsim::LongReadSimulator::new(&genome)
        .seed(5)
        .mean_len(4_000.0);
    let reads = sim.simulate(5);
    let mut correct = 0usize;
    for r in &reads {
        if let (Some(m), _) = mapper.map_long_read(&r.seq) {
            if m.chrom == r.chrom && m.pos.abs_diff(r.start) <= 200 {
                correct += 1;
            }
        }
    }
    assert!(correct >= 4, "only {correct}/5 long reads correct");
}
