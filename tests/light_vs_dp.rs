//! Integration: light alignment must match full DP on the single-edit-type
//! class — the correctness claim behind replacing DP with XOR masks
//! (paper §4.6: "GenPairX always returns the optimal alignment given an
//! upper limit for the number of edits").

use genpairx::align::{align, AlignMode, Scoring};
use genpairx::core::light::{light_align, LightConfig};
use genpairx::genome::{Base, DnaSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const E: usize = 5;

fn random_window(rng: &mut StdRng, len: usize) -> DnaSeq {
    (0..len)
        .map(|_| Base::from_code(rng.random_range(0..4)))
        .collect()
}

#[test]
fn light_equals_dp_on_random_mismatch_reads() {
    let mut rng = StdRng::seed_from_u64(1);
    let scoring = Scoring::short_read();
    let cfg = LightConfig::default();
    for trial in 0..200 {
        let window = random_window(&mut rng, 150 + 2 * E);
        let mut read = window.subseq(E..E + 150);
        let k = rng.random_range(0..=cfg.max_mismatches as usize);
        let mut positions = std::collections::HashSet::new();
        for _ in 0..k {
            positions.insert(rng.random_range(0..150));
        }
        for &p in &positions {
            read.set(p, read.get(p).complement());
        }
        let light = light_align(&read, &window, E, &cfg, &scoring)
            .unwrap_or_else(|| panic!("trial {trial}: light rejected {k} mismatches"));
        let dp = align(&read, &window, &scoring, AlignMode::Fit);
        assert_eq!(light.score, dp.score, "trial {trial} with {k} mismatches");
        assert_eq!(light.cigar.query_len(), 150);
    }
}

#[test]
fn light_equals_dp_on_random_indel_runs() {
    let mut rng = StdRng::seed_from_u64(2);
    let scoring = Scoring::short_read();
    let cfg = LightConfig::default();
    for trial in 0..200 {
        let window = random_window(&mut rng, 200);
        let k = rng.random_range(1..=E);
        let p = rng.random_range(10..130);
        let read = if rng.random_bool(0.5) {
            // deletion: read skips k window bases
            let mut r = window.subseq(E..E + p);
            r.extend_from_seq(&window.subseq(E + p + k..E + p + k + (150 - p)));
            r
        } else {
            // insertion: k extra bases in the read
            let mut r = window.subseq(E..E + p);
            for _ in 0..k {
                r.push(window.get(E + p).complement());
            }
            r.extend_from_seq(&window.subseq(E + p..E + p + (150 - p - k)));
            r
        };
        assert_eq!(read.len(), 150);
        let dp = align(&read, &window, &scoring, AlignMode::Fit);
        let Some(light) = light_align(&read, &window, E, &cfg, &scoring) else {
            panic!("trial {trial}: light rejected an indel run of {k}");
        };
        // DP is optimal, so light can never exceed it; for planted
        // single-run edits it must match (random flanks can occasionally
        // admit an equally-scoring alternative, so compare scores, not
        // CIGARs).
        assert!(light.score <= dp.score, "trial {trial}: light beat DP");
        assert!(
            light.score >= dp.score,
            "trial {trial}: light {} < dp {} (k={k}, p={p})",
            light.score,
            dp.score
        );
    }
}

#[test]
fn light_never_beats_dp_on_arbitrary_reads() {
    // Soundness: on arbitrary (mixed-edit) reads light alignment either
    // refuses or returns a score no better than the DP optimum.
    let mut rng = StdRng::seed_from_u64(3);
    let scoring = Scoring::short_read();
    let cfg = LightConfig::default();
    for _ in 0..100 {
        let window = random_window(&mut rng, 200);
        let mut read = window.subseq(E..E + 150);
        // Random mangling: mismatches plus up to two independent indels.
        for _ in 0..rng.random_range(0..6) {
            let p = rng.random_range(0..read.len());
            read.set(p, Base::from_code(rng.random_range(0..4)));
        }
        if rng.random_bool(0.5) {
            let p = rng.random_range(0..140);
            let mut r = read.subseq(0..p);
            r.extend_from_seq(&read.subseq(p + 1..read.len()));
            r.push(window.get(rng.random_range(0..200)));
            read = r;
        }
        let dp = align(&read, &window, &scoring, AlignMode::Fit);
        if let Some(light) = light_align(&read, &window, E, &cfg, &scoring) {
            assert!(
                light.score <= dp.score,
                "light {} > dp {}",
                light.score,
                dp.score
            );
        }
    }
}
