//! Sharding-invariance suite: warm accounting is a function of the
//! workload, not the schedule.
//!
//! GenPairX's NMSL stage is one shared accelerator; since the shared
//! channel-sharded device replaced the per-worker warm simulators, a warm
//! run's modeled totals must depend only on (workload, channel count,
//! dispatch quantum). This suite pins that down the hard way: for one fixed
//! dataset and a fixed `--channels`-equivalent configuration, the warm
//! `sim_cycles`, `seed_cycles`, `energy_pj`, `exposed_transfer_seconds`
//! (and friends) are asserted **bit-identical** across thread counts
//! {1, 2, 4, 8} × batch sizes {1, 64, 256}, while the SAM byte stream stays
//! identical to the serial reference throughout — the per-worker model of
//! PR 3/4 cannot pass this. The warm ≤ cold seeding regression rides along
//! so the invariance never comes at the cost of the dispatch win.

use genpairx::backend::{DeviceCounters, DispatchMode, LaneCounters, NmslBackend};
use genpairx::core::{GenPairConfig, GenPairMapper};
use genpairx::pipeline::{map_serial, FallbackPolicy, PipelineBuilder, ReadPair, SamTextSink};
use genpairx::readsim::dataset::{simulate_dataset, standard_genome, DATASETS};
use genpairx::telemetry::Telemetry;

/// The fixed device sharding under test (the CI smoke step runs
/// `backend_compare --channels 4` against the same partition).
const CHANNELS: usize = 4;

/// 2000 pairs is the acceptance workload; debug builds step down so the
/// tier-1 `cargo test -q` stays minutes-scale (the invariance property is
/// size-independent — CI additionally runs the full suite in release).
const N_PAIRS: usize = if cfg!(debug_assertions) { 500 } else { 2000 };

const THREADS: [usize; 4] = [1, 2, 4, 8];
const BATCH_SIZES: [usize; 3] = [1, 64, 256];

/// The warm accounting fields the tentpole promises are sharding-invariant,
/// floats captured as bits so "identical" means identical, not "close".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct WarmFingerprint {
    sim_cycles: u64,
    seed_cycles: u64,
    fallback_cycles: u64,
    energy_pj_bits: u64,
    exposed_transfer_bits: u64,
    transfer_bits: u64,
    dram_bytes: u64,
    dram_requests: u64,
    pairs: u64,
}

impl WarmFingerprint {
    fn of(b: &genpairx::backend::BackendStats) -> WarmFingerprint {
        WarmFingerprint {
            sim_cycles: b.sim_cycles,
            seed_cycles: b.seed_cycles,
            fallback_cycles: b.fallback_cycles,
            energy_pj_bits: b.energy_pj.to_bits(),
            exposed_transfer_bits: b.exposed_transfer_seconds.to_bits(),
            transfer_bits: b.transfer_seconds.to_bits(),
            dram_bytes: b.dram_bytes,
            dram_requests: b.dram_requests,
            pairs: b.pairs,
        }
    }
}

/// The cycle-domain device counters, which make the same invariance
/// promise as the warm totals: every per-lane field (stall breakdown, DRAM
/// stats, high-water marks) and the quantum-occupancy histogram is a
/// function of the per-lane released-pair stream, which the contiguity
/// frontier fixes regardless of schedule. `frontier_peak_depth` is the one
/// deliberate omission — how deep batches pile up ahead of the frontier
/// depends on worker timing, so it is schedule-domain and excluded from
/// the fingerprint (see ARCHITECTURE.md "Observability").
#[derive(Debug, PartialEq)]
struct DeviceFingerprint {
    lanes: Vec<LaneCounters>,
    quantum_occupancy: [u64; genpairx::backend::QUANTUM_OCC_BUCKETS],
}

impl DeviceFingerprint {
    fn of(d: &DeviceCounters) -> DeviceFingerprint {
        DeviceFingerprint {
            lanes: d.lanes.clone(),
            quantum_occupancy: d.quantum_occupancy,
        }
    }
}

fn dataset() -> (genpairx::genome::ReferenceGenome, Vec<ReadPair>) {
    let genome = standard_genome(300_000, 0x51AB);
    let pairs = simulate_dataset(&genome, &DATASETS[0], N_PAIRS)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect();
    (genome, pairs)
}

fn run_warm(
    mapper: &GenPairMapper<'_>,
    genome: &genpairx::genome::ReferenceGenome,
    pairs: &[ReadPair],
    threads: usize,
    batch_size: usize,
) -> (Vec<u8>, genpairx::backend::BackendStats, DeviceCounters) {
    run_warm_with(
        mapper,
        genome,
        pairs,
        threads,
        batch_size,
        Telemetry::disabled(),
    )
}

/// Like [`run_warm`], with an explicit telemetry handle attached to both
/// the pipeline and the NMSL backend (the accounting-inertness tests trace
/// the exact configuration the untraced runs use).
fn run_warm_with(
    mapper: &GenPairMapper<'_>,
    genome: &genpairx::genome::ReferenceGenome,
    pairs: &[ReadPair],
    threads: usize,
    batch_size: usize,
    telemetry: Telemetry,
) -> (Vec<u8>, genpairx::backend::BackendStats, DeviceCounters) {
    let engine = PipelineBuilder::new()
        .threads(threads)
        .batch_size(batch_size)
        .telemetry(telemetry.clone())
        .backend(
            NmslBackend::new(mapper)
                .channels(CHANNELS)
                .telemetry(telemetry),
        );
    let mut sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
    let report = engine.run(pairs.iter().cloned(), &mut sink).unwrap();
    let counters = engine
        .backend()
        .device_counters()
        .expect("warm run leaves device counters at flush");
    (sink.into_inner().unwrap(), report.backend, counters)
}

#[test]
fn warm_totals_are_bit_identical_across_threads_and_batches() {
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    // Serial reference bytes: the results-side oracle.
    let mut serial_sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
    map_serial(
        &mapper,
        FallbackPolicy::EmitUnmapped,
        pairs.iter().cloned(),
        &mut serial_sink,
    )
    .unwrap();
    let expected_sam = serial_sink.into_inner().unwrap();

    let mut reference: Option<WarmFingerprint> = None;
    let mut device_reference: Option<DeviceFingerprint> = None;
    for threads in THREADS {
        for batch_size in BATCH_SIZES {
            let (sam, backend, device) = run_warm(&mapper, &genome, &pairs, threads, batch_size);
            assert!(
                sam == expected_sam,
                "SAM bytes diverge from serial at threads={threads} batch_size={batch_size}"
            );
            let fp = WarmFingerprint::of(&backend);
            assert_eq!(fp.pairs, N_PAIRS as u64);
            assert!(fp.seed_cycles > 0, "warm run modeled no seeding work");
            match reference {
                None => reference = Some(fp),
                Some(reference) => assert_eq!(
                    fp, reference,
                    "warm accounting diverged at threads={threads} batch_size={batch_size} \
                     (channels fixed at {CHANNELS})"
                ),
            }
            // The device counters make the same promise, lane by lane:
            // the whole cycle-attributed breakdown — not just the totals —
            // is a function of the workload. And each lane's attribution
            // must partition its clock exactly before it can be trusted.
            assert_eq!(device.lanes.len(), CHANNELS);
            let device_cycles = device.device_cycles();
            for (i, lane) in device.lanes.iter().enumerate() {
                assert_eq!(
                    lane.breakdown.total(),
                    lane.cycles,
                    "lane {i} attribution must cover every lane cycle"
                );
                assert_eq!(
                    device.lane_busy_cycles(i) + device.lane_idle_cycles(i),
                    device_cycles,
                    "lane {i} busy+idle must partition the device clock"
                );
            }
            let dfp = DeviceFingerprint::of(&device);
            match &device_reference {
                None => device_reference = Some(dfp),
                Some(reference) => assert_eq!(
                    &dfp, reference,
                    "device counters diverged at threads={threads} batch_size={batch_size} \
                     (channels fixed at {CHANNELS})"
                ),
            }
        }
    }
}

#[test]
fn warm_seeding_still_beats_cold_at_fixed_channels() {
    // The invariance refactor must not regress the dispatch win the warm
    // model exists for: a shared warm stream over the same workload models
    // no more seeding cycles than the cold per-batch sum. Cold cycle totals
    // are schedule-independent too (every batch cold-starts), so one
    // configuration of each suffices.
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let (_, warm, _) = run_warm(&mapper, &genome, &pairs, 2, 64);

    let cold_engine = PipelineBuilder::new().threads(2).batch_size(64).backend(
        NmslBackend::new(&mapper)
            .channels(CHANNELS)
            .dispatch_mode(DispatchMode::Cold),
    );
    let (_, cold_report) = cold_engine.run_collect(pairs.clone());
    let cold = cold_report.backend;

    assert_eq!(warm.pairs, cold.pairs);
    assert!(
        warm.seed_cycles <= cold.seed_cycles,
        "warm seeding cycles ({}) exceed the cold per-batch sum ({})",
        warm.seed_cycles,
        cold.seed_cycles
    );
    // Same DRAM traffic either way: the dispatch model changes *when*
    // requests run, never what runs.
    assert_eq!(warm.dram_bytes, cold.dram_bytes);
    assert_eq!(warm.dram_requests, cold.dram_requests);
    // And the warm device hides transfer where serial cold dispatch cannot.
    assert!(warm.exposed_transfer_seconds <= warm.transfer_seconds);
    assert_eq!(cold.exposed_transfer_seconds, cold.transfer_seconds);
}

#[test]
fn channel_count_is_part_of_the_model() {
    // Warm totals are comparable only at fixed sharding: the lane partition
    // is modeled hardware. Each channel count must itself be deterministic
    // (same totals when re-run), while different counts are allowed — and
    // on this workload do — differ.
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let run_channels = |channels: usize, threads: usize| {
        let engine = PipelineBuilder::new()
            .threads(threads)
            .batch_size(64)
            .backend(NmslBackend::new(&mapper).channels(channels));
        let (_, report) = engine.run_collect(pairs.clone());
        WarmFingerprint::of(&report.backend)
    };
    let one_a = run_channels(1, 1);
    let one_b = run_channels(1, 4);
    assert_eq!(one_a, one_b, "channels=1 must be thread-invariant too");
    let four = run_channels(4, 2);
    assert_eq!(one_a.dram_bytes, four.dram_bytes, "traffic never changes");
    assert_eq!(one_a.pairs, four.pairs);
}

#[test]
fn tracing_is_accounting_inert() {
    // gx-telemetry's second hard rule: wall-clock observation never feeds
    // the modeled stats. A fully traced warm run — telemetry on both the
    // pipeline and the NMSL device — must produce the same SAM bytes and
    // the same bit-level warm fingerprint as the untraced run, while
    // actually collecting the spans and metrics it claims to.
    let (genome, pairs) = dataset();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    let (plain_sam, plain, plain_device) = run_warm(&mapper, &genome, &pairs, 4, 64);

    let telemetry = Telemetry::enabled();
    let (traced_sam, traced, traced_device) =
        run_warm_with(&mapper, &genome, &pairs, 4, 64, telemetry.clone());

    assert!(traced_sam == plain_sam, "tracing changed the SAM bytes");
    assert_eq!(
        WarmFingerprint::of(&traced),
        WarmFingerprint::of(&plain),
        "tracing changed the warm accounting"
    );
    assert_eq!(
        DeviceFingerprint::of(&traced_device),
        DeviceFingerprint::of(&plain_device),
        "tracing changed the device counters"
    );

    // The traced run must really have traced: every pipeline stage span
    // and the device's lane spans are present, and the stage histograms
    // saw every batch.
    let trace = telemetry.chrome_trace().expect("telemetry was enabled");
    for span in [
        "queue_wait",
        "map_batch",
        "emit_wait",
        "ingest",
        "lane_drain",
    ] {
        assert!(trace.contains(span), "trace is missing {span:?} spans");
    }
    // The counter tracks ride in the same trace: quantum-boundary lane
    // occupancy and frontier depth export as Chrome counter events
    // (`"ph":"C"`), named per lane so Perfetto renders one track each.
    assert!(
        trace.contains("\"ph\":\"C\""),
        "trace is missing counter samples"
    );
    assert!(trace.contains("lane_occupancy"));
    assert!(trace.contains("frontier_depth"));
    let snap = telemetry.snapshot().expect("telemetry was enabled");
    let batches = (N_PAIRS as u64).div_ceil(64);
    assert_eq!(
        snap.histogram("gx_map_batch_ns").map(|h| h.count),
        Some(batches),
        "every batch must land in the map-latency histogram"
    );
    assert_eq!(
        snap.histogram("gx_emit_wait_ns").map(|h| h.count),
        Some(batches)
    );
    assert!(snap
        .histogram("gx_lane_drain_ns")
        .is_some_and(|h| h.count > 0));
    // And the exposition endpoint renders it all, including the device
    // counters the flush publishes into the registry.
    let text = snap.to_prometheus();
    assert!(text.contains("gx_map_batch_ns_count"));
    assert!(text.contains("gx_nmsl_lane_occupancy"));
    assert!(text.contains("gx_quantum_occupancy_bucket"));
    assert!(text.contains("gx_device_dram_stall_cycles_total"));
    assert!(text.contains("gx_dram_row_conflicts_total"));
    assert!(text.contains("gx_frontier_depth_max"));
}
