//! Integration: the hardware models — NMSL behaviour across window sizes
//! and memory technologies, pipeline sizing, and cost roll-up consistency.

use genpairx::accel::area_power::genpairx_cost;
use genpairx::accel::workload::synthetic_workloads;
use genpairx::accel::{NmslConfig, NmslSim, PipelineSizing, WorkloadProfile};
use genpairx::memsim::DramConfig;
use genpairx::readsim::dataset::standard_genome;
use genpairx::seedmap::{SeedMap, SeedMapConfig};

fn workloads(n: usize) -> Vec<genpairx::accel::PairWorkload> {
    let genome = standard_genome(300_000, 7);
    let map = SeedMap::build(&genome, &SeedMapConfig::default());
    synthetic_workloads(&map, &genome, n, 11)
}

#[test]
fn throughput_monotone_in_window_size() {
    let ws = workloads(600);
    let mut prev = 0.0;
    for window in [1usize, 8, 64, 512] {
        let mut sim = NmslSim::new(
            DramConfig::hbm2e_32ch(),
            NmslConfig {
                window: Some(window),
                ..NmslConfig::default()
            },
        );
        let tput = sim.run(&ws).mpairs_per_s;
        assert!(
            tput >= prev * 0.95,
            "window {window}: {tput} dropped below {prev}"
        );
        prev = tput;
    }
}

#[test]
fn memory_technology_ordering_matches_table6() {
    let ws = workloads(600);
    let run = |cfg: DramConfig| {
        NmslSim::new(cfg, NmslConfig::default())
            .run(&ws)
            .mpairs_per_s
    };
    let hbm = run(DramConfig::hbm2e_32ch());
    let gddr = run(DramConfig::gddr6_8ch());
    let ddr = run(DramConfig::ddr5_4ch());
    assert!(hbm > gddr, "HBM {hbm} <= GDDR6 {gddr}");
    assert!(hbm > ddr * 3.0, "HBM {hbm} not well above DDR5 {ddr}");
    assert!(gddr > ddr * 0.8, "GDDR6 {gddr} far below DDR5 {ddr}");
}

#[test]
fn sizing_scales_with_nmsl_rate_and_cost_follows() {
    let profile = WorkloadProfile::paper();
    let slow = PipelineSizing::balance(50.0, &profile);
    let fast = PipelineSizing::balance(200.0, &profile);
    assert!(fast.modules[2].instances > slow.modules[2].instances);

    let ws = workloads(300);
    let mut sim = NmslSim::new(DramConfig::hbm2e_32ch(), NmslConfig::default());
    let nmsl = sim.run(&ws);
    let cost_slow = genpairx_cost(&slow, &nmsl);
    let cost_fast = genpairx_cost(&fast, &nmsl);
    assert!(cost_fast.total_area_mm2() > cost_slow.total_area_mm2());
    assert!(cost_fast.total_power_mw() > cost_slow.total_power_mw());
    // HBM PHY dominates area in both; totals must stay in a sane range.
    assert!(cost_slow.total_area_mm2() > 60.0);
    assert!(cost_fast.total_area_mm2() < 100.0);
}

#[test]
fn nmsl_sram_formula_consistency() {
    let ws = workloads(300);
    let mut sim = NmslSim::new(DramConfig::hbm2e_32ch(), NmslConfig::default());
    let res = sim.run(&ws);
    assert_eq!(res.sram_bytes, res.buffer_bytes + res.fifo_bytes);
    assert_eq!(res.buffer_bytes, 6 * 1024 * 500 * 4);
    assert!(res.fifo_bytes > 0);
    assert!(res.elapsed_s > 0.0);
    assert!(res.dram_power_mw > 0.0);
}
