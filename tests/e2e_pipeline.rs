//! Integration: the parallel mapping engine is a drop-in replacement for
//! serial `map_pair` iteration — its SAM output is **byte-identical** to the
//! serial reference for the same seeded dataset, across thread counts and
//! batch sizes (including batch size 1 and a non-divisible remainder), and
//! its merged statistics equal the serial run's. The cross-backend suite
//! extends the same guarantee to the NMSL accelerator backend: identical
//! SAM bytes, diverging only in reported (simulated) cost.

use genpairx::backend::{DispatchMode, NmslBackend};
use genpairx::core::{GenPairConfig, GenPairMapper, PipelineStats};
use genpairx::genome::ReferenceGenome;
use genpairx::pipeline::{
    map_serial, FallbackPolicy, PipelineBuilder, ReadPair, ReadPairStream, SamTextSink, VecSink,
};
use genpairx::readsim::dataset::{simulate_dataset, standard_genome, DATASETS};

const N_PAIRS: usize = 230; // deliberately not divisible by any batch size below

fn dataset(genome: &ReferenceGenome) -> Vec<ReadPair> {
    simulate_dataset(genome, &DATASETS[0], N_PAIRS)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect()
}

/// Serial reference bytes: header + records emitted one pair at a time.
fn serial_sam(
    genome: &ReferenceGenome,
    mapper: &GenPairMapper<'_>,
    pairs: &[ReadPair],
    policy: FallbackPolicy,
) -> (Vec<u8>, PipelineStats) {
    let mut sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
    let report = map_serial(mapper, policy, pairs.iter().cloned(), &mut sink).unwrap();
    (sink.into_inner().unwrap(), report.stats)
}

#[test]
fn parallel_sam_is_byte_identical_to_serial() {
    let genome = standard_genome(250_000, 7);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs = dataset(&genome);
    let (expected, serial_stats) =
        serial_sam(&genome, &mapper, &pairs, FallbackPolicy::EmitUnmapped);
    assert_eq!(serial_stats.pairs, N_PAIRS as u64);

    for threads in [1usize, 2, 4, 8] {
        // 1 = degenerate batching, 7 = non-divisible remainder (230 = 32*7+6),
        // 64 = larger than some shards, 512 = one oversized batch.
        for batch_size in [1usize, 7, 64, 512] {
            let engine = PipelineBuilder::new()
                .threads(threads)
                .batch_size(batch_size)
                .engine(&mapper);
            let mut sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
            let report = engine.run(pairs.iter().cloned(), &mut sink).unwrap();
            let got = sink.into_inner().unwrap();
            assert!(
                got == expected,
                "SAM bytes diverge at threads={threads} batch_size={batch_size}"
            );
            assert_eq!(
                report.stats, serial_stats,
                "stats diverge at threads={threads} batch_size={batch_size}"
            );
            let expected_batches = N_PAIRS.div_ceil(batch_size) as u64;
            assert_eq!(report.batches, expected_batches);
        }
    }
}

#[test]
fn nmsl_backend_sam_is_byte_identical_to_software() {
    // The co-design contract: the accelerator backend maps with the same
    // algorithm, so for any thread count, batch size and dispatch mode its
    // ordered SAM stream equals the software backend's — only the reported
    // cost model differs. Warm sessions carry simulator state across the
    // batches each worker maps; this must never influence results. Batch
    // size 1 exercises one NMSL dispatch per pair; 64 gives multi-pair
    // sliding-window dispatches.
    let genome = standard_genome(180_000, 12);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs: Vec<ReadPair> = simulate_dataset(&genome, &DATASETS[0], 70)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect();

    let (expected, software_stats) =
        serial_sam(&genome, &mapper, &pairs, FallbackPolicy::EmitUnmapped);

    for mode in [DispatchMode::Warm, DispatchMode::Cold] {
        for threads in [1usize, 4] {
            for batch_size in [1usize, 64] {
                let engine = PipelineBuilder::new()
                    .threads(threads)
                    .batch_size(batch_size)
                    .backend(NmslBackend::new(&mapper).dispatch_mode(mode));
                let mut sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
                let report = engine.run(pairs.iter().cloned(), &mut sink).unwrap();
                let got = sink.into_inner().unwrap();
                assert!(
                    got == expected,
                    "NMSL SAM bytes diverge at threads={threads} batch_size={batch_size} {mode:?}"
                );
                assert_eq!(
                    report.stats, software_stats,
                    "algorithm stats diverge at threads={threads} batch_size={batch_size} {mode:?}"
                );
                // The accelerator model actually ran: per-batch dispatches
                // with nonzero simulated cost in every stage.
                assert_eq!(report.backend_name, "nmsl");
                assert_eq!(report.backend.batches, report.batches);
                assert_eq!(report.backend.pairs, pairs.len() as u64);
                assert!(
                    report.backend.seed_cycles > 0 && report.backend.energy_pj > 0.0,
                    "missing simulated cost at threads={threads} batch_size={batch_size} {mode:?}"
                );
                assert_eq!(
                    report.backend.sim_cycles,
                    report.backend.seed_cycles + report.backend.fallback_cycles
                );
                assert!(
                    report.backend.transfer_seconds > 0.0,
                    "host transfer unaccounted at threads={threads} batch_size={batch_size}"
                );
                assert!(report.backend.input_bytes > 0 && report.backend.output_bytes > 0);
            }
        }
    }
}

#[test]
fn warm_dispatch_cycles_never_exceed_cold() {
    // The warm-state regression the backend refactor exists for: one
    // worker streaming batches through a persistent simulator must model
    // no more seeding cycles than the cold per-batch sum on the same
    // workload — the overlapped drain can only help. Fallback and transfer
    // stages are dispatch-mode independent.
    let genome = standard_genome(200_000, 14);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs: Vec<ReadPair> = simulate_dataset(&genome, &DATASETS[0], 120)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect();

    let run_mode = |mode: DispatchMode| {
        let engine = PipelineBuilder::new()
            .threads(1)
            .batch_size(16)
            .backend(NmslBackend::new(&mapper).dispatch_mode(mode));
        let (_, report) = engine.run_collect(pairs.clone());
        report.backend
    };
    let warm = run_mode(DispatchMode::Warm);
    let cold = run_mode(DispatchMode::Cold);
    assert_eq!(warm.pairs, cold.pairs);
    assert!(warm.seed_cycles > 0);
    assert!(
        warm.seed_cycles <= cold.seed_cycles,
        "warm {} vs cold {} seeding cycles",
        warm.seed_cycles,
        cold.seed_cycles
    );
    assert_eq!(warm.fallback_cycles, cold.fallback_cycles);
    assert_eq!(warm.input_bytes, cold.input_bytes);
    assert_eq!(warm.output_bytes, cold.output_bytes);
    // Identical DRAM traffic: warm changes *when* requests run, not what
    // runs.
    assert_eq!(warm.dram_bytes, cold.dram_bytes);
    assert_eq!(warm.dram_requests, cold.dram_requests);
}

#[test]
fn overlapped_dma_emits_identical_sam_and_never_slows_the_system() {
    // The double-buffered DMA model is timing-only: SAM bytes must be
    // identical across overlap modes, and the overlapped system timeline
    // can only be at most the serialized one — transfer time is hidden
    // behind compute, never invented. Exercised end to end through the
    // engine (work-stealing dispatch, per-worker warm sessions) at the
    // acceptance thread counts {1, 4}.
    let genome = standard_genome(200_000, 18);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs: Vec<ReadPair> = simulate_dataset(&genome, &DATASETS[0], 160)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect();

    for threads in [1usize, 4] {
        let run_overlap = |overlap: bool| {
            // Two lanes on a 16-pair quantum: each lane streams ~5 quanta,
            // so real quantum-level DMA overlap occurs on this dataset.
            let engine = PipelineBuilder::new()
                .threads(threads)
                .batch_size(16)
                .backend(
                    NmslBackend::new(&mapper)
                        .channels(2)
                        .dispatch_quantum(16)
                        .overlap(overlap),
                );
            let mut sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
            let report = engine.run(pairs.iter().cloned(), &mut sink).unwrap();
            (sink.into_inner().unwrap(), report.backend)
        };
        let (on_bytes, on) = run_overlap(true);
        let (off_bytes, off) = run_overlap(false);
        assert!(
            on_bytes == off_bytes,
            "SAM bytes diverge across overlap modes at threads={threads}"
        );
        // Raw host traffic is mode-independent — and since the shared
        // device accumulates it in deterministic order, bit-identical.
        assert_eq!(
            on.transfer_seconds.to_bits(),
            off.transfer_seconds.to_bits(),
            "raw transfer diverged across overlap modes at threads={threads}"
        );
        assert_eq!(on.input_bytes, off.input_bytes);
        assert_eq!(off.exposed_transfer_seconds, off.transfer_seconds);
        assert!(
            on.exposed_transfer_seconds <= on.transfer_seconds,
            "exposed {} > raw {} at threads={threads}",
            on.exposed_transfer_seconds,
            on.transfer_seconds
        );
        // The PR 4 inequality, end to end: overlapped system time ≤
        // serial system time (equivalently throughput ≥).
        assert!(
            on.modeled_system_seconds() <= on.serial_system_seconds(),
            "threads={threads}"
        );
        assert!(
            on.system_reads_per_sec() >= off.serial_system_reads_per_sec(),
            "overlap lowered system throughput at threads={threads}"
        );
        // Real overlap must occur: every quantum after a lane's first
        // hides (part of) its DMA behind the previous quantum's drain.
        // The shared device makes this deterministic at ANY thread count,
        // where the per-worker model could only promise it at one.
        assert!(
            on.exposed_transfer_seconds < on.transfer_seconds,
            "no transfer was hidden on the shared warm device at threads={threads}"
        );
    }
}

#[test]
fn gendp_charged_exactly_for_the_fallback_share() {
    // Hand-crafted exact pairs stay on the light path: no pair reaches
    // GenDP, so the fallback stage must report zero. Adding a foreign pair
    // (which must fall back) makes it nonzero — the stage accounting
    // follows `fallback.is_some()` exactly.
    let genome = genpairx::genome::random::RandomGenomeBuilder::new(150_000)
        .seed(15)
        .build();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let seq = genome.chromosome(0).seq();
    let clean: Vec<ReadPair> = (0..24)
        .map(|i| {
            let s = 2_000 + i * 5_000;
            ReadPair::new(
                format!("c{i}"),
                seq.subseq(s..s + 150),
                seq.subseq(s + 250..s + 400).revcomp(),
            )
        })
        .collect();

    let engine = PipelineBuilder::new()
        .threads(2)
        .batch_size(8)
        .backend(NmslBackend::new(&mapper));
    let (_, clean_report) = engine.run_collect(clean.clone());
    assert_eq!(clean_report.stats.fallback_total(), 0);
    assert_eq!(clean_report.backend.fallback_cycles, 0);
    assert_eq!(clean_report.backend.fallback_seconds, 0.0);
    assert_eq!(clean_report.backend.fallback_energy_pj, 0.0);
    // Seeding and transfer still charged for every pair.
    assert!(clean_report.backend.seed_cycles > 0);
    assert!(clean_report.backend.transfer_seconds > 0.0);

    let foreign = standard_genome(8_000, 0xFEED);
    let oseq = foreign.chromosome(0).seq();
    let mut with_alien = clean;
    with_alien.push(ReadPair::new(
        "alien",
        oseq.subseq(100..250),
        oseq.subseq(300..450).revcomp(),
    ));
    let (_, dirty_report) = engine.run_collect(with_alien);
    assert!(dirty_report.stats.fallback_total() > 0);
    assert!(dirty_report.backend.fallback_cycles > 0);
    assert!(dirty_report.backend.fallback_energy_pj > 0.0);
}

#[test]
fn streaming_fastq_input_matches_materialized_input() {
    // The engine fed by an incremental ReadPairStream (no up-front Vec)
    // produces the same bytes as the collect-wrapper path.
    let genome = standard_genome(150_000, 13);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs = dataset(&genome);

    // Render the dataset as mate-paired FASTQ text.
    let mut r1_text = Vec::new();
    let mut r2_text = Vec::new();
    for p in &pairs {
        use std::io::Write;
        let q1 = "I".repeat(p.r1.len());
        let q2 = "I".repeat(p.r2.len());
        write!(r1_text, "@{}/1\n{}\n+\n{}\n", p.id, p.r1, q1).unwrap();
        write!(r2_text, "@{}/2\n{}\n+\n{}\n", p.id, p.r2, q2).unwrap();
    }

    let engine = PipelineBuilder::new()
        .threads(4)
        .batch_size(16)
        .engine(&mapper);

    let stream =
        ReadPairStream::new(&r1_text[..], &r2_text[..]).map(|p| p.expect("valid FASTQ stream"));
    let mut streamed_sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
    engine.run(stream, &mut streamed_sink).unwrap();

    let materialized =
        genpairx::pipeline::read_pairs_from_fastq(&r1_text[..], &r2_text[..]).unwrap();
    assert_eq!(materialized.len(), pairs.len());
    let mut collected_sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
    engine.run(materialized, &mut collected_sink).unwrap();

    assert!(
        streamed_sink.into_inner().unwrap() == collected_sink.into_inner().unwrap(),
        "streaming and materialized ingestion must produce identical SAM"
    );
}

#[test]
fn drop_policy_is_deterministic_too() {
    let genome = standard_genome(150_000, 8);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs = dataset(&genome);
    let (expected, _) = serial_sam(&genome, &mapper, &pairs, FallbackPolicy::Drop);

    for threads in [2usize, 8] {
        let engine = PipelineBuilder::new()
            .threads(threads)
            .batch_size(9)
            .fallback_policy(FallbackPolicy::Drop)
            .engine(&mapper);
        let mut sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
        engine.run(pairs.iter().cloned(), &mut sink).unwrap();
        assert!(sink.into_inner().unwrap() == expected, "threads={threads}");
    }
}

#[test]
fn engine_matches_per_pair_map_calls() {
    // The engine is not just self-consistent: its records equal what direct
    // `map_pair` + `pair_mapping_to_sam` iteration produces.
    let genome = standard_genome(120_000, 9);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs = dataset(&genome);

    let engine = PipelineBuilder::new()
        .threads(4)
        .batch_size(16)
        .engine(&mapper);
    let mut sink = VecSink::new();
    engine.run(pairs.iter().cloned(), &mut sink).unwrap();

    let mut cursor = sink.records.iter();
    for p in &pairs {
        let res = mapper.map_pair(&p.r1, &p.r2);
        if let Some(m) = &res.mapping {
            let (s1, s2) = genpairx::core::pair_mapping_to_sam(m, &p.id, &p.r1, &p.r2);
            let g1 = cursor.next().expect("missing record");
            let g2 = cursor.next().expect("missing record");
            assert_eq!((g1.qname.as_str(), g1.pos), (s1.qname.as_str(), s1.pos));
            assert_eq!((g2.qname.as_str(), g2.pos), (s2.qname.as_str(), s2.pos));
        } else {
            let g1 = cursor.next().expect("missing unmapped record");
            let g2 = cursor.next().expect("missing unmapped record");
            assert!(!g1.is_mapped());
            assert!(!g2.is_mapped());
            assert_eq!(g1.qname, format!("{}/1", p.id));
            assert_eq!(g2.qname, format!("{}/2", p.id));
        }
    }
    assert!(cursor.next().is_none(), "extra records emitted");
}
