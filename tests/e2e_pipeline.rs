//! Integration: the parallel mapping engine is a drop-in replacement for
//! serial `map_pair` iteration — its SAM output is **byte-identical** to the
//! serial reference for the same seeded dataset, across thread counts and
//! batch sizes (including batch size 1 and a non-divisible remainder), and
//! its merged statistics equal the serial run's.

use genpairx::core::{GenPairConfig, GenPairMapper, PipelineStats};
use genpairx::genome::ReferenceGenome;
use genpairx::pipeline::{
    map_serial, FallbackPolicy, PipelineBuilder, ReadPair, SamTextSink, VecSink,
};
use genpairx::readsim::dataset::{simulate_dataset, standard_genome, DATASETS};

const N_PAIRS: usize = 230; // deliberately not divisible by any batch size below

fn dataset(genome: &ReferenceGenome) -> Vec<ReadPair> {
    simulate_dataset(genome, &DATASETS[0], N_PAIRS)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect()
}

/// Serial reference bytes: header + records emitted one pair at a time.
fn serial_sam(
    genome: &ReferenceGenome,
    mapper: &GenPairMapper<'_>,
    pairs: &[ReadPair],
    policy: FallbackPolicy,
) -> (Vec<u8>, PipelineStats) {
    let mut sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
    let report = map_serial(mapper, policy, pairs.iter().cloned(), &mut sink).unwrap();
    (sink.into_inner().unwrap(), report.stats)
}

#[test]
fn parallel_sam_is_byte_identical_to_serial() {
    let genome = standard_genome(250_000, 7);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs = dataset(&genome);
    let (expected, serial_stats) =
        serial_sam(&genome, &mapper, &pairs, FallbackPolicy::EmitUnmapped);
    assert_eq!(serial_stats.pairs, N_PAIRS as u64);

    for threads in [1usize, 2, 4, 8] {
        // 1 = degenerate batching, 7 = non-divisible remainder (230 = 32*7+6),
        // 64 = larger than some shards, 512 = one oversized batch.
        for batch_size in [1usize, 7, 64, 512] {
            let engine = PipelineBuilder::new()
                .threads(threads)
                .batch_size(batch_size)
                .engine(&mapper);
            let mut sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
            let report = engine.run(pairs.iter().cloned(), &mut sink).unwrap();
            let got = sink.into_inner().unwrap();
            assert!(
                got == expected,
                "SAM bytes diverge at threads={threads} batch_size={batch_size}"
            );
            assert_eq!(
                report.stats, serial_stats,
                "stats diverge at threads={threads} batch_size={batch_size}"
            );
            let expected_batches = N_PAIRS.div_ceil(batch_size) as u64;
            assert_eq!(report.batches, expected_batches);
        }
    }
}

#[test]
fn drop_policy_is_deterministic_too() {
    let genome = standard_genome(150_000, 8);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs = dataset(&genome);
    let (expected, _) = serial_sam(&genome, &mapper, &pairs, FallbackPolicy::Drop);

    for threads in [2usize, 8] {
        let engine = PipelineBuilder::new()
            .threads(threads)
            .batch_size(9)
            .fallback_policy(FallbackPolicy::Drop)
            .engine(&mapper);
        let mut sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
        engine.run(pairs.iter().cloned(), &mut sink).unwrap();
        assert!(sink.into_inner().unwrap() == expected, "threads={threads}");
    }
}

#[test]
fn engine_matches_per_pair_map_calls() {
    // The engine is not just self-consistent: its records equal what direct
    // `map_pair` + `pair_mapping_to_sam` iteration produces.
    let genome = standard_genome(120_000, 9);
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let pairs = dataset(&genome);

    let engine = PipelineBuilder::new()
        .threads(4)
        .batch_size(16)
        .engine(&mapper);
    let mut sink = VecSink::new();
    engine.run(pairs.iter().cloned(), &mut sink).unwrap();

    let mut cursor = sink.records.iter();
    for p in &pairs {
        let res = mapper.map_pair(&p.r1, &p.r2);
        if let Some(m) = &res.mapping {
            let (s1, s2) = genpairx::core::pair_mapping_to_sam(m, &p.id, &p.r1, &p.r2);
            let g1 = cursor.next().expect("missing record");
            let g2 = cursor.next().expect("missing record");
            assert_eq!((g1.qname.as_str(), g1.pos), (s1.qname.as_str(), s1.pos));
            assert_eq!((g2.qname.as_str(), g2.pos), (s2.qname.as_str(), s2.pos));
        } else {
            let g1 = cursor.next().expect("missing unmapped record");
            let g2 = cursor.next().expect("missing unmapped record");
            assert!(!g1.is_mapped());
            assert!(!g2.is_mapped());
            assert_eq!(g1.qname, format!("{}/1", p.id));
            assert_eq!(g2.qname, format!("{}/2", p.id));
        }
    }
    assert!(cursor.next().is_none(), "extra records emitted");
}
