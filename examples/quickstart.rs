//! Quickstart: build a reference, index it, and map a handful of simulated
//! read pairs with GenPair.
//!
//! Run with: `cargo run --release --example quickstart`

use genpairx::core::{GenPairConfig, GenPairMapper, PipelineStats};
use genpairx::genome::random::RandomGenomeBuilder;
use genpairx::readsim::PairedEndSimulator;

fn main() {
    // 1. A 500 kb repeat-rich reference (GRCh38 stand-in).
    let genome = RandomGenomeBuilder::new(500_000)
        .chromosomes(2)
        .humanlike_repeats()
        .seed(42)
        .build();
    println!(
        "reference: {} chromosomes, {} bp total",
        genome.num_chromosomes(),
        genome.total_len()
    );

    // 2. Build the SeedMap index (the offline stage) and the mapper.
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let stats = mapper.seedmap().stats();
    println!(
        "SeedMap: {} locations in {} buckets ({} filtered), {:.1} MB",
        stats.stored_locations,
        stats.used_buckets,
        stats.filtered_buckets,
        mapper.seedmap().memory_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 3. Simulate 2x150 bp pairs with a 0.1% error rate.
    let mut sim = PairedEndSimulator::new(&genome).seed(7);
    let pairs = sim.simulate(20);

    // 4. Map them.
    let mut pipeline_stats = PipelineStats::new();
    for pair in &pairs {
        let result = mapper.map_pair(&pair.r1.seq, &pair.r2.seq);
        pipeline_stats.record(&result);
        if let Some(m) = &result.mapping {
            println!(
                "{}: chr{} {}..{} strand={} scores={}+{} cigar1={} (truth {})",
                pair.id,
                m.chrom + 1,
                m.pos1,
                m.pos2,
                if m.r1_forward { "+" } else { "-" },
                m.score1,
                m.score2,
                m.cigar1,
                pair.truth.start1.min(pair.truth.start2),
            );
        } else {
            println!(
                "{}: needs full DP fallback ({:?})",
                pair.id, result.fallback
            );
        }
    }
    println!(
        "\nlight-mapped: {:.0}%  DP-at-candidates: {:.0}%  full fallback: {:.0}%",
        pipeline_stats.light_mapped_pct(),
        pipeline_stats.light_fail_pct(),
        pipeline_stats.seedmap_miss_pct() + pipeline_stats.pafilter_pct(),
    );
}
