//! Demonstrates the gx-pipeline throughput engine: simulate a dataset, map
//! it through the parallel engine, and stream ordered SAM to a sink while
//! collecting the paper's pipeline statistics.
//!
//! ```sh
//! cargo run --release --example throughput               # software backend
//! GX_BACKEND=nmsl cargo run --release --example throughput  # accelerator model
//! ```
//!
//! With `GX_BACKEND=nmsl` the engine drives the NMSL accelerator timing
//! model instead of the pure software path: the SAM bytes are identical (the
//! assertion at the end still holds), but the report additionally carries
//! simulated hardware cycles and DRAM energy.

use genpairx::backend::NmslBackend;
use genpairx::core::{GenPairConfig, GenPairMapper};
use genpairx::genome::ReferenceGenome;
use genpairx::pipeline::{
    map_serial, FallbackPolicy, MapBackend, MappingEngine, PipelineBuilder, PipelineReport,
    ReadPair, SamTextSink,
};
use genpairx::readsim::dataset::{simulate_dataset, standard_genome, DATASETS};

fn run_engine<B: MapBackend>(
    engine: &MappingEngine<B>,
    genome: &ReferenceGenome,
    pairs: &[ReadPair],
) -> (Vec<u8>, PipelineReport) {
    let mut sink = SamTextSink::with_header(genome, Vec::new()).unwrap();
    let report = engine.run(pairs.iter().cloned(), &mut sink).unwrap();
    (sink.into_inner().unwrap(), report)
}

fn main() {
    let genome = standard_genome(400_000, 0xF1);
    let pairs: Vec<ReadPair> = simulate_dataset(&genome, &DATASETS[0], 2_000)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect();
    println!(
        "reference: {} bp, {} pairs",
        genome.total_len(),
        pairs.len()
    );

    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    // Serial reference first: the engine's output must match it byte for byte.
    let mut serial_sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
    let serial = map_serial(
        &mapper,
        FallbackPolicy::EmitUnmapped,
        pairs.iter().cloned(),
        &mut serial_sink,
    )
    .unwrap();
    let serial_bytes = serial_sink.into_inner().unwrap();

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let builder = PipelineBuilder::new()
        .threads(threads)
        .batch_size(128)
        .queue_depth(2 * threads);

    let backend_kind = std::env::var("GX_BACKEND").unwrap_or_else(|_| "software".into());
    let (parallel_bytes, report) = match backend_kind.as_str() {
        "nmsl" => run_engine(&builder.backend(NmslBackend::new(&mapper)), &genome, &pairs),
        "software" => run_engine(&builder.engine(&mapper), &genome, &pairs),
        other => panic!("unknown GX_BACKEND {other:?} (expected software or nmsl)"),
    };

    println!("backend:          {}", report.backend_name);
    println!("threads:          {}", report.threads);
    println!(
        "batches:          {} × {} pairs",
        report.batches, report.batch_size
    );
    println!("records written:  {}", report.records_written);
    println!("light-mapped:     {:.1}%", report.stats.light_mapped_pct());
    println!("mapped total:     {:.1}%", report.stats.mapped_pct());
    println!("reads/sec (wall): {:.0}", report.reads_per_sec());
    println!(
        "speedup vs serial: {:.2}x",
        serial.elapsed.as_secs_f64() / report.elapsed.as_secs_f64()
    );
    if report.backend.sim_cycles > 0 {
        let b = &report.backend;
        println!("-- modeled accelerator cost, by stage --");
        println!(
            "seeding (NMSL):   {} cycles, {:.1} nJ",
            b.seed_cycles,
            b.seed_energy_pj / 1e3
        );
        println!(
            "fallback (GenDP): {} cycles, {:.3} nJ",
            b.fallback_cycles,
            b.fallback_energy_pj / 1e3
        );
        println!(
            "host transfer:    {:.3} µs raw, {:.3} µs exposed after DMA overlap ({} B in, {} B out)",
            b.transfer_seconds * 1e6,
            b.exposed_transfer_seconds * 1e6,
            b.input_bytes,
            b.output_bytes
        );
        println!(
            "modeled reads/sec: {:.0} (accelerator), {:.0} (system, overlapped), {:.0} (system, serialized)",
            b.modeled_reads_per_sec(),
            b.system_reads_per_sec(),
            b.serial_system_reads_per_sec()
        );
        println!(
            "modeled energy:   {:.1} nJ/pair",
            b.energy_pj_per_pair() / 1e3
        );
    }
    assert_eq!(
        parallel_bytes, serial_bytes,
        "ordered emitter must reproduce the serial byte stream"
    );
    println!("parallel SAM output is byte-identical to the serial reference ✓");
}
