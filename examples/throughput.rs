//! Demonstrates the gx-pipeline throughput engine: simulate a dataset, map
//! it through the parallel engine, and stream ordered SAM to a sink while
//! collecting the paper's pipeline statistics.
//!
//! ```sh
//! cargo run --release --example throughput
//! ```

use genpairx::core::{GenPairConfig, GenPairMapper};
use genpairx::pipeline::{map_serial, FallbackPolicy, PipelineBuilder, ReadPair, SamTextSink};
use genpairx::readsim::dataset::{simulate_dataset, standard_genome, DATASETS};

fn main() {
    let genome = standard_genome(400_000, 0xF1);
    let pairs: Vec<ReadPair> = simulate_dataset(&genome, &DATASETS[0], 2_000)
        .into_iter()
        .map(|p| ReadPair::new(p.id, p.r1.seq, p.r2.seq))
        .collect();
    println!(
        "reference: {} bp, {} pairs",
        genome.total_len(),
        pairs.len()
    );

    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    // Serial reference first: the engine's output must match it byte for byte.
    let mut serial_sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
    let serial = map_serial(
        &mapper,
        FallbackPolicy::EmitUnmapped,
        pairs.iter().cloned(),
        &mut serial_sink,
    )
    .unwrap();
    let serial_bytes = serial_sink.into_inner().unwrap();

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let engine = PipelineBuilder::new()
        .threads(threads)
        .batch_size(128)
        .queue_depth(2 * threads)
        .engine(&mapper);

    let mut sink = SamTextSink::with_header(&genome, Vec::new()).unwrap();
    let report = engine.run(pairs.iter().cloned(), &mut sink).unwrap();
    let parallel_bytes = sink.into_inner().unwrap();

    println!("threads:          {}", report.threads);
    println!(
        "batches:          {} × {} pairs",
        report.batches, report.batch_size
    );
    println!("records written:  {}", report.records_written);
    println!("light-mapped:     {:.1}%", report.stats.light_mapped_pct());
    println!("mapped total:     {:.1}%", report.stats.mapped_pct());
    println!("reads/sec:        {:.0}", report.reads_per_sec());
    println!(
        "speedup vs serial: {:.2}x",
        serial.elapsed.as_secs_f64() / report.elapsed.as_secs_f64()
    );
    assert_eq!(
        parallel_bytes, serial_bytes,
        "ordered emitter must reproduce the serial byte stream"
    );
    println!("parallel SAM output is byte-identical to the serial reference ✓");
}
