//! Long-read mapping via the §4.7 reformulation: pseudo-pairs + location
//! voting + banded DP.
//!
//! Run with: `cargo run --release --example long_reads`

use genpairx::core::{GenPairConfig, GenPairMapper};
use genpairx::genome::random::RandomGenomeBuilder;
use genpairx::readsim::{ErrorModel, LongReadSimulator};

fn main() {
    let genome = RandomGenomeBuilder::new(1_000_000)
        .humanlike_repeats()
        .seed(21)
        .build();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());

    // HiFi-like reads: ~6 kbp mean, 0.3% errors.
    let mut sim = LongReadSimulator::new(&genome)
        .seed(8)
        .mean_len(6_000.0)
        .error_model(ErrorModel::mason_default(0.003));
    let reads = sim.simulate(8);

    let mut correct = 0usize;
    for r in &reads {
        let (mapping, work) = mapper.map_long_read(&r.seq);
        match mapping {
            Some(m) => {
                let ok =
                    m.chrom == r.chrom && m.pos.abs_diff(r.start) <= 100 && m.forward == r.forward;
                correct += ok as usize;
                println!(
                    "{}: {} bp -> chr{}:{} strand={} votes={} score={} dp_cells={} [{}]",
                    r.id,
                    r.seq.len(),
                    m.chrom + 1,
                    m.pos,
                    if m.forward { "+" } else { "-" },
                    m.votes,
                    m.score,
                    work.dp_cells,
                    if ok { "correct" } else { "WRONG" }
                );
            }
            None => println!(
                "{}: unmapped ({} pseudo-pairs tried)",
                r.id, work.pseudo_pairs
            ),
        }
    }
    println!(
        "\n{}/{} long reads mapped to their origin",
        correct,
        reads.len()
    );
}
