//! Simulating the GenPairX accelerator: NMSL over HBM2e, pipeline sizing,
//! and the area/power roll-up — the hardware half of the paper.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use genpairx::accel::area_power::genpairx_cost;
use genpairx::accel::workload::build_workloads;
use genpairx::accel::{NmslConfig, NmslSim, PipelineSizing, WorkloadProfile};
use genpairx::core::{GenPairConfig, GenPairMapper, PipelineStats};
use genpairx::genome::random::RandomGenomeBuilder;
use genpairx::memsim::DramConfig;
use genpairx::readsim::PairedEndSimulator;

fn main() {
    let genome = RandomGenomeBuilder::new(500_000)
        .humanlike_repeats()
        .seed(3)
        .build();
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let mut sim = PairedEndSimulator::new(&genome).seed(4);
    let pairs = sim.simulate(1_500);

    // Software profile: how much work does each module do per pair?
    let mut stats = PipelineStats::new();
    for p in &pairs {
        stats.record(&mapper.map_pair(&p.r1.seq, &p.r2.seq));
    }
    let profile = WorkloadProfile::from_stats(&stats, 150);
    println!(
        "workload profile: {:.1} PA iterations/pair, {:.1} light alignments/pair",
        profile.mean_pa_iterations, profile.mean_light_aligns
    );

    // NMSL cycle simulation over HBM2e with the paper's window of 1024.
    let reads: Vec<_> = pairs
        .iter()
        .map(|p| (p.r1.seq.clone(), p.r2.seq.clone()))
        .collect();
    let workloads = build_workloads(&reads, mapper.seedmap());
    let mut nmsl_sim = NmslSim::new(DramConfig::hbm2e_32ch(), NmslConfig::default());
    let nmsl = nmsl_sim.run(&workloads);
    println!(
        "NMSL: {:.1} MPair/s, {:.1} GB/s, row-hit {:.2}, max channel FIFO {} entries",
        nmsl.mpairs_per_s, nmsl.gbs, nmsl.row_hit_rate, nmsl.max_channel_fifo
    );

    // Balance the pipeline and price it.
    let sizing = PipelineSizing::balance(nmsl.mpairs_per_s, &profile);
    for m in &sizing.modules {
        println!(
            "{:<28} {:>7.1} MPair/s/instance  x{}",
            m.spec.name, m.mpairs_per_instance, m.instances
        );
    }
    let cost = genpairx_cost(&sizing, &nmsl);
    println!("\n{}", cost.render("GenPairX cost breakdown (7 nm)"));
    println!(
        "end-to-end: {:.1} MPair/s = {:.0} Mbp/s",
        sizing.pipeline_mpairs(),
        sizing.pipeline_mpairs() * 300.0
    );
}
