//! End-to-end variant calling (the paper's Table 7 pipeline in miniature):
//! donor genome with known variants → simulated paired reads → GenPair
//! mapping → pileup variant calling → accuracy against the truth set.
//!
//! Run with: `cargo run --release --example variant_calling`

use genpairx::core::{pair_mapping_to_sam, GenPairConfig, GenPairMapper};
use genpairx::genome::random::RandomGenomeBuilder;
use genpairx::genome::variant::{generate_variants, DonorGenome, VariantProfile};
use genpairx::readsim::{ErrorModel, PairedEndSimulator};
use genpairx::vcall::{call_variants, compare_variants, CallerConfig, Pileup};

fn main() {
    let genome = RandomGenomeBuilder::new(400_000)
        .humanlike_repeats()
        .seed(11)
        .build();

    // Truth set: SNPs at ~1e-3/bp, INDELs at 2e-4/bp.
    let truth = generate_variants(&genome, &VariantProfile::default(), 99);
    let donor = DonorGenome::apply(&genome, truth).expect("variants apply cleanly");
    println!("donor genome carries {} variants", donor.variants().len());

    // ~25x coverage of 2x150bp pairs from the donor.
    let n_pairs = (genome.total_len() as usize * 25) / 300;
    let pairs = PairedEndSimulator::new(donor.genome())
        .seed(5)
        .error_model(ErrorModel::mason_default(0.001))
        .simulate(n_pairs);
    println!("simulated {} pairs (~25x coverage)", pairs.len());

    // Map against the *reference* and accumulate a pileup.
    let mapper = GenPairMapper::build(&genome, &GenPairConfig::default());
    let mut pile = Pileup::new(&genome);
    let mut mapped = 0usize;
    for p in &pairs {
        if let Some(m) = mapper.map_pair(&p.r1.seq, &p.r2.seq).mapping {
            let (s1, s2) = pair_mapping_to_sam(&m, &p.id, &p.r1.seq, &p.r2.seq);
            pile.add_record(&s1);
            pile.add_record(&s2);
            mapped += 1;
        }
    }
    println!("GenPair mapped {}/{} pairs", mapped, pairs.len());

    // Call and score.
    let calls = call_variants(&pile, &genome, &CallerConfig::default());
    let result = compare_variants(&calls, donor.variants());
    println!("\ncalled {} variants", calls.len());
    println!(
        "SNP   TP={} FP={} FN={}  precision={:.4} recall={:.4} F1={:.4}",
        result.snp.tp,
        result.snp.fp,
        result.snp.fn_,
        result.snp.precision(),
        result.snp.recall(),
        result.snp.f1()
    );
    println!(
        "INDEL TP={} FP={} FN={}  precision={:.4} recall={:.4} F1={:.4}",
        result.indel.tp,
        result.indel.fp,
        result.indel.fn_,
        result.indel.precision(),
        result.indel.recall(),
        result.indel.f1()
    );
}
